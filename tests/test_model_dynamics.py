import numpy as np
import pytest

from repro.config import ScaleConfig
from repro.model import ScaleRM, convective_sounding
from repro.model.dynamics import TridiagonalFactors


class TestTridiagonalFactors:
    def test_solves_known_system(self):
        n = 12
        rng = np.random.default_rng(0)
        sub = rng.uniform(-0.3, -0.1, n)
        sup = rng.uniform(-0.3, -0.1, n)
        diag = np.full(n, 2.0)
        sub[0] = sup[-1] = 0.0
        A = np.diag(diag) + np.diag(sub[1:], -1) + np.diag(sup[:-1], 1)
        x_true = rng.normal(size=(n, 4, 5))
        rhs = np.einsum("ij,jkl->ikl", A, x_true)
        tf = TridiagonalFactors(sub, diag, sup)
        x = tf.solve(rhs)
        assert np.allclose(x, x_true, atol=1e-10)

    def test_rejects_singular(self):
        with pytest.raises(np.linalg.LinAlgError):
            TridiagonalFactors(np.zeros(3), np.zeros(3), np.zeros(3))

    def test_rejects_band_mismatch(self):
        with pytest.raises(ValueError):
            TridiagonalFactors(np.zeros(3), np.zeros(4), np.zeros(4))


class TestQuiescentStability:
    def test_rest_state_stays_at_rest(self, model):
        st = model.initial_state()
        for _ in range(10):
            st = model.dynamics.step(st, model.config.dt)
        assert np.allclose(st.fields["momz"], 0.0, atol=1e-6)
        assert np.allclose(st.fields["dens_p"], 0.0, atol=1e-6)

    def test_rigid_lid_and_ground(self, bubble_state, model):
        st = bubble_state
        for _ in range(10):
            st = model.dynamics.step(st, model.config.dt)
        assert np.allclose(st.fields["momz"][0], 0.0)
        assert np.allclose(st.fields["momz"][-1], 0.0)


class TestWarmBubble:
    def test_bubble_rises(self, model, bubble_state):
        st = bubble_state
        j, i = model.grid.column_index(64000.0, 64000.0)
        for _ in range(30):
            st = model.dynamics.step(st, model.config.dt)
        w_col = st.fields["momz"][:, j, i]
        assert w_col.max() > 0.05  # upward motion at the bubble

    def test_bubble_init_is_isobaric(self, model, bubble_state):
        p0 = model.initial_state().pressure()
        p1 = bubble_state.pressure()
        assert np.allclose(p0, p1, rtol=1e-6)

    def test_bubble_is_buoyant_not_heavy(self, model, bubble_state):
        # warm bubble: negative density anomaly
        assert bubble_state.fields["dens_p"].min() < 0
        assert bubble_state.fields["dens_p"].max() <= 1e-8

    def test_no_blowup_long_run(self, model, bubble_state):
        st = bubble_state
        for _ in range(100):
            st = model.dynamics.step(st, model.config.dt)
        assert np.all(np.isfinite(st.fields["momz"]))
        assert np.abs(st.fields["momz"]).max() < 50.0

    def test_energy_growth_bounded_quiet_run(self, model):
        # tiny perturbation must not grow explosively (acoustic stability)
        st = model.initial_state()
        rng = np.random.default_rng(3)
        st.fields["dens_p"] += 1e-5 * rng.normal(size=model.grid.shape).astype(
            model.grid.dtype
        )
        e0 = float(np.sum(st.fields["dens_p"].astype(np.float64) ** 2))
        for _ in range(50):
            st = model.dynamics.step(st, model.config.dt)
        e1 = float(np.sum(st.fields["dens_p"].astype(np.float64) ** 2))
        assert e1 < 50.0 * e0


class TestCFL:
    def test_cfl_diagnostic_scales_with_dt(self, model):
        st = model.initial_state()
        c1 = model.dynamics.max_horizontal_cfl(st, 1.0)
        c2 = model.dynamics.max_horizontal_cfl(st, 2.0)
        assert c2 == pytest.approx(2.0 * c1)

    def test_configured_dt_is_stable_regime(self, model):
        st = model.initial_state()
        assert model.dynamics.max_horizontal_cfl(st, model.config.dt) < 1.6

    def test_paper_dt_on_paper_mesh(self):
        # the 0.4 s / 500 m pair must sit inside the HEVI stability range
        cfg = ScaleConfig()
        cs = 350.0
        cfl = cfg.dt * 2 * cs / cfg.domain.dx
        assert cfl < 1.6


class TestDivergenceDamping:
    def test_damping_reduces_divergence_noise(self):
        from dataclasses import replace

        base = ScaleConfig().reduced(nx=16, nz=10)
        snd = convective_sounding()
        rng = np.random.default_rng(5)

        def run(damp):
            cfg = replace(base, divergence_damping=damp)
            m = ScaleRM(cfg, snd, with_physics=False)
            st = m.initial_state()
            noise = rng.normal(size=m.grid.shape).astype(m.grid.dtype)
            st.fields["momx"] += 0.5 * noise
            for _ in range(20):
                st = m.dynamics.step(st, cfg.dt)
            momz = st.fields["momz"]
            from repro.model.advection import mass_divergence

            dwdz = (momz[1:] - momz[:-1]) / m.grid.dz[:, None, None]
            div = mass_divergence(m.grid, st.fields["momx"], st.fields["momy"]) + dwdz
            return float(np.sqrt(np.mean(div.astype(np.float64) ** 2)))

        rng = np.random.default_rng(5)
        noisy = run(0.0)
        rng = np.random.default_rng(5)
        damped = run(0.1)
        assert damped < noisy
