"""MP-PAWR simulator: forward operators, scan geometry, file format."""

import numpy as np
import pytest

from repro.config import RadarConfig
from repro.constants import DBZ_NO_RAIN
from repro.radar import (
    PAWRSimulator,
    ScanGeometry,
    decode_volume,
    encode_volume,
    reflectivity_dbz,
    reflectivity_factor,
    volume_to_grid,
)
from repro.radar.blockage import blockage_mask, grid_observation_mask, range_mask
from repro.radar.doppler import fall_speed_weighted, radial_velocity, unit_vectors
from repro.radar.fileformat import volume_nbytes
from repro.radar.pawr import trilinear_sample


class TestReflectivity:
    def test_zero_hydrometeors_floor(self):
        dbz = reflectivity_dbz(reflectivity_factor(np.array(1.0), np.array(0.0)))
        assert dbz == DBZ_NO_RAIN

    def test_monotone_in_rain(self):
        dens = np.ones(4)
        qr = np.array([1e-5, 1e-4, 1e-3, 1e-2])
        dbz = reflectivity_dbz(reflectivity_factor(dens, qr))
        assert np.all(np.diff(dbz) > 0)

    def test_one_gram_per_kg_heavy_rain(self):
        # ~1 g/kg rain should read as heavy rain (>40 dBZ), the paper's
        # orange-shade regime in Fig. 6a
        dbz = reflectivity_dbz(reflectivity_factor(np.array(1.1), np.array(1e-3)))
        assert 35.0 < dbz < 60.0

    def test_species_additive(self):
        dens = np.ones(1)
        q = np.full(1, 5e-4)
        z_r = reflectivity_factor(dens, q)
        z_all = reflectivity_factor(dens, q, q, q)
        assert z_all > z_r

    def test_dbz_from_state(self, developed_nature):
        from repro.radar.reflectivity import dbz_from_state

        dbz = dbz_from_state(developed_nature)
        assert dbz.shape == developed_nature.grid.shape
        assert dbz.max() > 10.0  # convection produced echoes


class TestDoppler:
    def test_fall_speed_zero_without_rain(self):
        v = fall_speed_weighted(np.ones(3), np.zeros(3))
        assert np.allclose(v, 0.0)

    def test_unit_vectors_normalized(self):
        r = RadarConfig()
        ex, ey, ez, dist = unit_vectors(
            np.array([70000.0]), np.array([64000.0]), np.array([5000.0]), r
        )
        assert np.hypot(np.hypot(ex, ey), ez)[0] == pytest.approx(1.0, rel=1e-6)

    def test_radial_velocity_projection(self):
        # pure eastward wind observed due east: vr = +u
        vr = radial_velocity(
            np.array(10.0), np.array(0.0), np.array(0.0), np.array(0.0),
            np.array(1.0), np.array(0.0), np.array(0.0),
        )
        assert vr == pytest.approx(10.0)

    def test_falling_rain_gives_negative_vr_overhead(self):
        # directly above the radar (ez=1), falling rain (vt>0) -> vr < 0
        vr = radial_velocity(
            np.array(0.0), np.array(0.0), np.array(0.0), np.array(5.0),
            np.array(0.0), np.array(0.0), np.array(1.0),
        )
        assert vr == pytest.approx(-5.0)


class TestScanGeometry:
    @pytest.fixture(scope="class")
    def geom(self, small_radar_config):
        return ScanGeometry(small_radar_config)

    def test_shapes(self, geom, small_radar_config):
        r = small_radar_config
        assert geom.shape == (r.n_elevations, r.n_azimuths, r.n_gates)
        x, y, z = geom.sample_points()
        assert x.shape == geom.shape

    def test_elevations_dense_at_low_angles(self, geom):
        el = geom.elevations
        assert np.all(np.diff(el) > 0)
        # quadratic-type spacing: first gap smaller than last
        assert el[1] - el[0] < el[-1] - el[-2]

    def test_full_azimuth_coverage(self, geom):
        az = geom.azimuths
        assert az[0] < 0.2
        assert az[-1] > 2 * np.pi - 0.2

    def test_heights_increase_with_elevation(self, geom):
        _, _, z = geom.sample_points()
        # at the farthest gate, higher elevation = higher sample
        assert np.all(np.diff(z[:, 0, -1]) > 0)

    def test_beam_curvature_positive(self, geom, small_radar_config):
        # 4/3-earth: even at 0-ish elevation the far gate sits above site
        _, _, z = geom.sample_points()
        assert z[0, 0, -1] > small_radar_config.site_z


class TestMasks:
    def test_range_mask(self, small_radar_config):
        geom = ScanGeometry(small_radar_config)
        m = range_mask(geom)
        assert m.shape == geom.shape
        # the reduced config spans exactly the max range
        assert m.all()

    def test_blockage_hits_only_low_elevations(self, small_radar_config):
        geom = ScanGeometry(small_radar_config)
        m = blockage_mask(geom, seed=7)
        n_low = max(1, small_radar_config.n_elevations // 4)
        assert m[n_low:].all()
        assert not m[:n_low].all()

    def test_grid_mask_excludes_far_corners(self, small_grid, small_radar_config):
        m = grid_observation_mask(small_grid, small_radar_config)
        # corners of the 128-km domain are ~90 km from the center: outside
        assert not m[0, 0, 0]
        # directly near the radar at low levels: inside
        j, i = small_grid.column_index(64000.0, 64000.0)
        assert m[1, j, i + 1]


class TestTrilinear:
    def test_exact_at_cell_centers(self, small_grid):
        rng = np.random.default_rng(0)
        f = rng.normal(size=small_grid.shape)
        k, j, i = 3, 5, 7
        v = trilinear_sample(
            small_grid,
            f,
            np.array([small_grid.x_c[i]]),
            np.array([small_grid.y_c[j]]),
            np.array([small_grid.z_c[k]]),
        )
        assert v[0] == pytest.approx(f[k, j, i], rel=1e-6)

    def test_linear_field_exact(self, small_grid):
        Z, Y, X = small_grid.meshgrid()
        f = 2.0 * X + 3.0 * Y + 0.5 * Z
        xs = np.array([30000.0, 70000.0])
        ys = np.array([40000.0, 80000.0])
        zs = np.array([5000.0, 9000.0])
        v = trilinear_sample(small_grid, f, xs, ys, zs)
        assert np.allclose(v, 2 * xs + 3 * ys + 0.5 * zs, rtol=1e-6)

    def test_outside_domain_fill(self, small_grid):
        f = np.ones(small_grid.shape)
        v = trilinear_sample(small_grid, f, np.array([-5000.0]), np.array([0.0]), np.array([100.0]), fill=-1.0)
        assert v[0] == -1.0


class TestVolumeScan:
    def test_scan_roundtrip_through_fileformat(self, small_grid, small_radar_config, developed_nature):
        pawr = PAWRSimulator(small_radar_config, small_grid, seed=1)
        scan = pawr.scan(developed_nature, t_obs=123.0)
        raw = scan.encode(t_created=130.0)
        dec = decode_volume(raw)
        assert dec["t_obs"] == 123.0
        assert dec["t_created"] == 130.0
        assert dec["dbz"].shape == scan.dbz.shape
        # float16 quantization bound
        assert np.allclose(dec["dbz"], scan.dbz, atol=0.1)
        assert np.array_equal(dec["valid"], scan.valid)

    def test_volume_size_formula(self, small_radar_config):
        r = small_radar_config
        shape = (r.n_elevations, r.n_azimuths, r.n_gates)
        dbz = np.zeros(shape, np.float32)
        raw = encode_volume(dbz, np.ones(shape, bool), dbz, 0.0, 0.0)
        assert len(raw) == volume_nbytes(shape)

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_volume(b"NOTRADAR" + b"\x00" * 100)

    def test_scan_sees_the_storm(self, small_grid, small_radar_config, developed_nature):
        pawr = PAWRSimulator(small_radar_config, small_grid, seed=1)
        scan = pawr.scan(developed_nature, t_obs=0.0)
        assert scan.dbz[scan.valid].max() > 10.0

    def test_noise_statistics(self, small_grid, small_radar_config, model):
        # a no-rain state: dbz samples = floor + noise with sigma ~ config
        pawr = PAWRSimulator(small_radar_config, small_grid, seed=2)
        scan = pawr.scan(model.initial_state(), t_obs=0.0)
        vals = scan.dbz[scan.valid]
        # floored normal noise: std below the nominal 1 dBZ but nonzero
        assert 0.1 < vals.std() < 1.5


class TestRegrid:
    def test_volume_to_grid(self, small_grid, small_radar_config, developed_nature):
        from repro.config import LETKFConfig

        pawr = PAWRSimulator(small_radar_config, small_grid, seed=1)
        scan = pawr.scan(developed_nature, t_obs=0.0)
        refl, dopp = volume_to_grid(scan, small_grid, LETKFConfig(ensemble_size=8))
        assert refl.kind == "reflectivity"
        assert dopp.kind == "doppler"
        assert refl.error_std == 5.0  # Table 2
        assert dopp.error_std == 3.0
        assert refl.n_valid > 0
        # gridded reflectivity tracks the truth pattern (per-cell values
        # carry large representativeness error on the very coarse test
        # mesh, so test correlation, not pointwise agreement)
        from repro.radar.reflectivity import dbz_from_state

        truth = dbz_from_state(developed_nature)
        sel = refl.valid
        corr = np.corrcoef(refl.values[sel], truth[sel])[0, 1]
        assert corr > 0.5
