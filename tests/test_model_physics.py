"""Radiation, surface fluxes, PBL, Smagorinsky, and the physics driver."""

import numpy as np
import pytest

from repro.model.pbl import MYNN25, _tridiag_solve_var
from repro.model.physics import PhysicsSuite
from repro.model.radiation import GrayRadiation
from repro.model.surface import BeljaarsSurface
from repro.model.turbulence import Smagorinsky


class TestGrayRadiation:
    def test_clear_sky_tropospheric_cooling(self, model):
        rad = GrayRadiation(model.grid, model.reference)
        st = model.initial_state()
        heat = rad.heating_rate(st, cos_zenith=0.0)  # night
        # longwave-only: net cooling through most of the column
        mean_rate = heat.mean(axis=(1, 2)) * 86400.0  # K/day
        assert np.mean(mean_rate) < 0
        assert np.all(np.abs(mean_rate) < 20.0)  # physically bounded

    def test_solar_heating_reduces_cooling(self, model):
        rad = GrayRadiation(model.grid, model.reference)
        st = model.initial_state()
        night = rad.heating_rate(st, cos_zenith=0.0)
        day = rad.heating_rate(st, cos_zenith=1.0)
        assert day.mean() > night.mean()

    def test_cloud_enhances_local_cooling_at_top(self, model):
        rad = GrayRadiation(model.grid, model.reference)
        st = model.initial_state()
        clear = rad.heating_rate(st, cos_zenith=0.0)
        st.fields["qc"][5, 8, 8] = 2e-3  # opaque cloud layer
        cloudy = rad.heating_rate(st, cos_zenith=0.0)
        # cloud top (just above the layer) cools harder than clear sky
        assert cloudy[5, 8, 8] != pytest.approx(clear[5, 8, 8])

    def test_output_shape_and_dtype(self, model):
        rad = GrayRadiation(model.grid, model.reference)
        heat = rad.heating_rate(model.initial_state())
        assert heat.shape == model.grid.shape
        assert heat.dtype == model.grid.dtype


class TestBeljaarsSurface:
    def test_flux_keys(self, model):
        sfc = BeljaarsSurface(model.grid, model.reference)
        fl = sfc.fluxes(model.initial_state())
        assert set(fl) == {"tau_x", "tau_y", "shf", "lhf", "ustar"}

    def test_momentum_flux_opposes_wind(self, model):
        sfc = BeljaarsSurface(model.grid, model.reference)
        st = model.initial_state()
        u1 = st.velocities()[0][0]
        fl = sfc.fluxes(st)
        assert np.all(fl["tau_x"] * u1 <= 1e-12)

    def test_warm_skin_gives_upward_heat_flux(self, model):
        sfc = BeljaarsSurface(model.grid, model.reference, skin_excess=2.0)
        fl = sfc.fluxes(model.initial_state())
        assert np.all(fl["shf"] > 0)

    def test_latent_flux_nonnegative(self, model):
        sfc = BeljaarsSurface(model.grid, model.reference)
        fl = sfc.fluxes(model.initial_state())
        assert np.all(fl["lhf"] >= 0)

    def test_ustar_grows_with_wind(self, model):
        sfc = BeljaarsSurface(model.grid, model.reference)
        st = model.initial_state()
        u0 = sfc.fluxes(st)["ustar"].mean()
        st.fields["momx"] *= 3.0
        u1 = sfc.fluxes(st)["ustar"].mean()
        assert u1 > u0

    def test_apply_moistens_and_warms_surface_layer(self, model):
        sfc = BeljaarsSurface(model.grid, model.reference, skin_excess=2.0)
        st = model.initial_state()
        qv0 = st.fields["qv"][0].copy()
        th0 = st.fields["rhot_p"][0].copy()
        sfc.apply(st, dt=60.0)
        assert np.all(st.fields["qv"][0] >= qv0)
        assert np.mean(st.fields["rhot_p"][0]) > np.mean(th0)


class TestTridiagVar:
    def test_identity_system(self):
        n, ny, nx = 6, 3, 4
        diag = np.ones((n, ny, nx))
        zero = np.zeros((n, ny, nx))
        rhs = np.random.default_rng(0).normal(size=(n, ny, nx))
        x = _tridiag_solve_var(zero, diag, zero, rhs)
        assert np.allclose(x, rhs)

    def test_matches_dense_solve(self):
        rng = np.random.default_rng(1)
        n = 8
        sub = -rng.uniform(0.1, 0.3, (n, 1, 1)) * np.ones((n, 2, 2))
        sup = -rng.uniform(0.1, 0.3, (n, 1, 1)) * np.ones((n, 2, 2))
        diag = 1.0 - sub - sup
        sub[0] = 0
        sup[-1] = 0
        rhs = rng.normal(size=(n, 2, 2))
        x = _tridiag_solve_var(sub, diag, sup, rhs)
        A = np.diag(diag[:, 0, 0]) + np.diag(sub[1:, 0, 0], -1) + np.diag(sup[:-1, 0, 0], 1)
        x_ref = np.linalg.solve(A, rhs[:, 0, 0])
        assert np.allclose(x[:, 0, 0], x_ref, atol=1e-10)


class TestMYNN25:
    def test_diffusivities_positive_and_bounded(self, model):
        pbl = MYNN25(model.grid, model.reference)
        km, kh = pbl.diffusivities(model.initial_state())
        assert np.all(km >= 0) and np.all(kh >= 0)
        assert km.max() < 1000.0

    def test_tke_grows_under_strong_shear(self, model):
        # shear strong enough that Ri < 0.25 (shear production beats the
        # stable-stratification buoyancy destruction)
        pbl = MYNN25(model.grid, model.reference)
        st = model.initial_state()
        dens = st.dens
        shear = (0.05 * model.grid.z_c[:, None, None]).astype(model.grid.dtype)
        st.fields["momx"] += dens * shear
        e0 = pbl.tke.mean()
        pbl.diffusivities(st)
        pbl.advance_tke(st, dt=30.0)
        assert pbl.tke.mean() > e0

    def test_tke_floor(self, model):
        pbl = MYNN25(model.grid, model.reference)
        st = model.initial_state()
        for _ in range(5):
            pbl.diffusivities(st)
            pbl.advance_tke(st, dt=60.0)
        assert np.all(pbl.tke >= pbl.tke_min)

    def test_apply_conserves_column_mean_theta(self, model):
        # pure vertical diffusion redistributes but does not create heat
        pbl = MYNN25(model.grid, model.reference)
        st = model.initial_state()
        rng = np.random.default_rng(2)
        st.fields["rhot_p"] += rng.normal(0, 0.5, model.grid.shape).astype(model.grid.dtype)
        before = np.sum(st.fields["rhot_p"].astype(np.float64) * model.grid.dz[:, None, None])
        pbl.apply(st, dt=30.0)
        after = np.sum(st.fields["rhot_p"].astype(np.float64) * model.grid.dz[:, None, None])
        assert after == pytest.approx(before, rel=0.05, abs=5.0)

    def test_apply_smooths_wind_profile(self, model):
        pbl = MYNN25(model.grid, model.reference)
        st = model.initial_state()
        dens = st.dens
        zig = (np.resize([5.0, -5.0], model.grid.nz)[:, None, None]).astype(model.grid.dtype)
        st.fields["momx"] += dens * zig
        rough_before = np.mean(np.abs(np.diff(st.velocities()[0], axis=0)))
        pbl.apply(st, dt=120.0)
        rough_after = np.mean(np.abs(np.diff(st.velocities()[0], axis=0)))
        assert rough_after < rough_before


class TestSmagorinsky:
    def test_zero_strain_zero_viscosity(self, model):
        smag = Smagorinsky(model.grid, model.reference)
        nu = smag.viscosity(model.initial_state())
        assert np.allclose(nu, 0.0, atol=1e-6)

    def test_viscosity_grows_with_strain(self, model):
        smag = Smagorinsky(model.grid, model.reference)
        st = model.initial_state()
        rng = np.random.default_rng(0)
        st.fields["momx"] += rng.normal(0, 2.0, model.grid.shape).astype(model.grid.dtype)
        nu = smag.viscosity(st)
        assert nu.max() > 0

    def test_apply_damps_horizontal_noise(self, model):
        smag = Smagorinsky(model.grid, model.reference, cs=0.3)
        st = model.initial_state()
        rng = np.random.default_rng(1)
        noise = rng.normal(0, 2.0, model.grid.shape).astype(model.grid.dtype)
        st.fields["momx"] += noise
        var0 = np.var(st.fields["momx"].astype(np.float64))
        for _ in range(5):
            smag.apply(st, dt=30.0)
        assert np.var(st.fields["momx"].astype(np.float64)) < var0

    def test_water_stays_nonnegative(self, model):
        smag = Smagorinsky(model.grid, model.reference)
        st = model.initial_state()
        st.fields["qr"][3, 8, 8] = 1e-3
        smag.apply(st, dt=60.0)
        assert np.all(st.fields["qr"] >= 0)


class TestPhysicsSuite:
    def test_all_table3_schemes_called(self, model):
        suite = PhysicsSuite(model.grid, model.reference, model.config)
        st = model.initial_state()
        suite.apply(st, dt=10.0)
        assert all(n >= 1 for n in suite.calls.values()), suite.calls

    def test_rain_rate_published(self, model):
        suite = PhysicsSuite(model.grid, model.reference, model.config)
        st = model.initial_state()
        suite.apply(st, dt=10.0)
        assert suite.last_rain_rate is not None
        assert suite.last_rain_rate.shape == (model.grid.ny, model.grid.nx)

    def test_radiation_skippable(self, model):
        suite = PhysicsSuite(model.grid, model.reference, model.config)
        suite.apply(model.initial_state(), dt=10.0, with_radiation=False)
        assert suite.calls["radiation"] == 0

    def test_state_finite_after_physics(self, model):
        suite = PhysicsSuite(model.grid, model.reference, model.config)
        st = model.initial_state()
        for _ in range(3):
            suite.apply(st, dt=10.0)
        for name, arr in st.fields.items():
            assert np.all(np.isfinite(arr)), name
