"""Streaming ingest: admission buffer, stream faults, chaos campaign.

The property tests pin the module's determinism contract: any
interleaving of delayed/duplicated/reordered deliveries of a scan set
yields the same admitted sequence as the sorted unique stream.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import WorkflowConfig
from repro.ingest.buffer import (
    ADMIT,
    SKIP,
    SUBSTITUTE,
    WAIT,
    AdmissionDecision,
    IngestBuffer,
    ScanEnvelope,
    envelope_from_observations,
)
from repro.ingest.chaos import IngestChaosCampaign, ingest_chaos_text
from repro.jitdt.protocol import ChunkAssembler, chunk_payload
from repro.resilience.faults import StreamFaultInjector, StreamFaultRates
from repro.workflow.realtime import RealtimeWorkflow

settings.register_profile("repro", max_examples=40, deadline=None)
settings.load_profile("repro")


def env(t, sig=None, arrival=None, radar="pawr", payload=None):
    return ScanEnvelope(
        radar_id=radar,
        t_valid=float(t),
        signature=sig if sig is not None else f"s{t:g}",
        arrival_time=float(arrival) if arrival is not None else float(t),
        payload=payload,
    )


class TestIngestBuffer:
    def test_on_time_admit(self):
        buf = IngestBuffer("pawr")
        assert buf.offer(env(30)) == "buffered"
        d = buf.decide(30.0)
        assert d.action == ADMIT
        assert d.scan.t_valid == 30.0
        assert buf.watermark == 30.0
        assert [s.t_valid for s in buf.admitted_log] == [30.0]

    def test_wrong_radar_rejected(self):
        buf = IngestBuffer("pawr")
        with pytest.raises(ValueError, match="radar"):
            buf.offer(env(30, radar="other"))

    def test_duplicate_suppressed(self):
        buf = IngestBuffer("pawr")
        buf.offer(env(30, sig="a"))
        assert buf.offer(env(30, sig="a", arrival=31)) == "duplicate"
        assert buf.counters["duplicate"] == 1
        assert buf.backlog_size == 1

    def test_late_arrival_is_stale_after_resolution(self):
        buf = IngestBuffer("pawr")
        buf.offer(env(30))
        buf.decide(30.0)
        # the same cycle's scan re-sent after resolution: firewalled
        assert buf.offer(env(30, sig="resend", arrival=45)) == "stale"
        assert buf.counters["stale"] == 1
        # and never admitted
        assert buf.decide(60.0).action == SUBSTITUTE

    def test_conflict_keeps_first_copy(self):
        buf = IngestBuffer("pawr")
        buf.offer(env(30, sig="first"))
        assert buf.offer(env(30, sig="second")) == "conflict"
        d = buf.decide(30.0)
        assert d.action == ADMIT
        assert d.scan.signature == "first"

    def test_overflow_drop_oldest(self):
        buf = IngestBuffer("pawr", max_backlog=2)
        buf.offer(env(30))
        buf.offer(env(60))
        assert buf.offer(env(90)) == "overflow"
        # oldest (t=30) was evicted to make room
        assert buf.decide(30.0).action == SKIP
        assert buf.decide(60.0).action == ADMIT
        assert buf.decide(90.0).action == ADMIT

    def test_overflow_drop_newest(self):
        buf = IngestBuffer("pawr", max_backlog=2, drop_policy="newest")
        buf.offer(env(30))
        buf.offer(env(60))
        assert buf.offer(env(90)) == "overflow"
        # incoming (t=90) was refused; resident scans survive
        assert buf.decide(30.0).action == ADMIT
        assert buf.decide(60.0).action == ADMIT
        assert buf.decide(90.0).action == SUBSTITUTE

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            IngestBuffer("pawr", max_backlog=0)
        with pytest.raises(ValueError):
            IngestBuffer("pawr", drop_policy="coin-flip")

    def test_wait_leaves_state_untouched(self):
        buf = IngestBuffer("pawr")
        d = buf.decide(30.0, now=31.0, deadline=45.0)
        assert d.action == WAIT
        assert buf.watermark == -math.inf
        # the scan lands inside the budget: re-decide admits it
        buf.offer(env(30, arrival=40))
        assert buf.decide(30.0, now=45.0, deadline=45.0).action == ADMIT

    def test_substitute_previous(self):
        buf = IngestBuffer("pawr")
        buf.offer(env(30))
        buf.decide(30.0)
        d = buf.decide(60.0)
        assert d.action == SUBSTITUTE
        assert d.scan.t_valid == 30.0  # the resident previous scan
        assert buf.watermark == 60.0
        assert buf.counters["substituted"] == 1

    def test_skip_without_previous(self):
        buf = IngestBuffer("pawr")
        d = buf.decide(30.0)
        assert d.action == SKIP
        assert d.observations is None
        assert buf.watermark == 30.0

    def test_substitute_disabled(self):
        buf = IngestBuffer("pawr", allow_substitute=False)
        buf.offer(env(30))
        buf.decide(30.0)
        assert buf.decide(60.0).action == SKIP

    def test_watermark_expires_passed_backlog(self):
        buf = IngestBuffer("pawr")
        buf.offer(env(60))  # buffered for a cycle that never resolves
        buf.decide(90.0)  # watermark jumps past it
        assert buf.counters["expired"] == 1
        assert buf.backlog_size == 0
        # and a re-send of the expired scan hits the stale firewall
        assert buf.offer(env(60, arrival=95)) == "stale"

    def test_dedup_horizon_prunes_seen(self):
        buf = IngestBuffer("pawr", dedup_horizon_s=60.0)
        buf.offer(env(30))
        buf.decide(30.0)
        buf.offer(env(600))
        buf.decide(600.0)
        # identity of t=30 fell off the horizon; the stale firewall
        # still rejects the re-send
        assert buf.offer(env(30, arrival=700)) == "stale"

    def test_t_match_tolerance(self):
        buf = IngestBuffer("pawr")
        buf.offer(env(30.0 + 1e-9))
        assert buf.decide(30.0).action == ADMIT

    def test_verify_invariants(self):
        buf = IngestBuffer("pawr")
        for t in (30, 60, 90):
            buf.offer(env(t))
            buf.decide(float(t))
        assert buf.verify_invariants() == []
        # corrupt the log by hand: the audit must notice both violations
        buf.admitted_log.append(buf.admitted_log[0])
        problems = buf.verify_invariants()
        assert any("stale" in p for p in problems)
        assert any("duplicate" in p for p in problems)

    def test_state_dict_roundtrip(self):
        a = IngestBuffer("pawr")
        a.offer(env(30))
        a.decide(30.0)
        a.offer(env(90))  # left in the backlog across the checkpoint
        a.decide(60.0)  # a substitution, for counter coverage

        b = IngestBuffer("pawr")
        b.load_state_dict(a.state_dict())
        assert b.watermark == a.watermark
        assert b.counters == a.counters
        assert b.backlog_size == 1
        assert [s.key for s in b.admitted_log] == [s.key for s in a.admitted_log]
        assert b.lateness.n == a.lateness.n
        # resumed buffer behaves identically: the admitted identity is
        # still remembered, and the carried backlog still admits
        assert b.offer(env(30, arrival=95)) == "duplicate"
        assert b.decide(90.0).action == ADMIT

    def test_envelope_from_observations_signature(self):
        import numpy as np

        class FakeObs:
            def __init__(self, x):
                self.values = np.full((2, 2), x)
                self.valid = np.ones((2, 2), dtype=bool)

        e1 = envelope_from_observations(
            "pawr", [FakeObs(1.0)], t_valid=30.0, arrival_time=31.0
        )
        e2 = envelope_from_observations(
            "pawr", [FakeObs(1.0)], t_valid=30.0, arrival_time=99.0
        )
        e3 = envelope_from_observations(
            "pawr", [FakeObs(2.0)], t_valid=30.0, arrival_time=31.0
        )
        assert e1.signature == e2.signature  # content-keyed, not time-keyed
        assert e1.signature != e3.signature
        assert e1.lateness_s == pytest.approx(1.0)


# -- the determinism contract, property-tested ---------------------------


@st.composite
def delivery_plans(draw):
    """A scan set with per-cycle delivery slips and duplicate counts."""
    n = draw(st.integers(min_value=2, max_value=8))
    slips = draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    dups = draw(st.lists(st.integers(1, 3), min_size=n, max_size=n))
    return n, slips, dups


def _run_plan(n, slips, dups, order_seed):
    """Drive one buffer through the plan, offering each decide-slot's
    arrivals in an ``order_seed``-dependent order."""
    buf = IngestBuffer("pawr", max_backlog=16)
    slots = {c: [] for c in range(n)}
    for c in range(n):
        lands = c + slips[c]
        if lands < n:
            for copy in range(dups[c]):
                slots[lands].append(
                    env(30 * (c + 1), sig=f"s{c}", arrival=30 * (lands + 1))
                )
    for c in range(n):
        for e in sorted(slots[c], key=lambda e: hash((order_seed, e.t_valid))):
            buf.offer(e)
        buf.decide(30.0 * (c + 1))
    return buf


@given(delivery_plans(), st.integers(0, 2**32), st.integers(0, 2**32))
def test_admission_independent_of_interleaving(plan, seed_a, seed_b):
    """Any interleaving of delayed/duplicated/reordered deliveries gives
    the same admitted sequence as the sorted unique on-time stream."""
    n, slips, dups = plan
    a = _run_plan(n, slips, dups, seed_a)
    b = _run_plan(n, slips, dups, seed_b)

    expected = [30.0 * (c + 1) for c in range(n) if slips[c] == 0]
    assert [s.t_valid for s in a.admitted_log] == expected
    assert [s.key for s in a.admitted_log] == [s.key for s in b.admitted_log]
    assert a.verify_invariants() == []

    # accounting is also interleaving-independent: on-time extra copies
    # are duplicates, slipped deliveries land past the watermark (stale)
    assert a.counters["duplicate"] == sum(
        dups[c] - 1 for c in range(n) if slips[c] == 0
    )
    assert a.counters["stale"] == sum(
        dups[c] for c in range(n) if slips[c] > 0 and c + slips[c] < n
    )
    assert a.counters == b.counters


@given(delivery_plans(), st.integers(0, 2**32))
def test_every_cycle_resolves_terminally(plan, order_seed):
    n, slips, dups = plan
    buf = _run_plan(n, slips, dups, order_seed)
    terminal = (
        buf.counters["admitted"]
        + buf.counters["substituted"]
        + buf.counters["skipped"]
    )
    assert terminal == n
    assert buf.watermark == 30.0 * n


# -- stream fault injector ----------------------------------------------


class TestStreamFaultInjector:
    def test_seed_deterministic(self):
        a = StreamFaultInjector(StreamFaultRates(), seed=7)
        b = StreamFaultInjector(StreamFaultRates(), seed=7)
        for c in range(50):
            assert a.scan_arrivals(c, t_ready=30.0 * c) == b.scan_arrivals(
                c, t_ready=30.0 * c
            )
        assert a.counts == b.counts

    def test_substreams_independent(self):
        chunks = list(chunk_payload(b"x" * 10_000, 1000))
        a = StreamFaultInjector(StreamFaultRates(), seed=7)
        b = StreamFaultInjector(StreamFaultRates(), seed=7)
        for c in range(20):
            b.corrupt_chunks(c, chunks)  # must not shift the scan draws
            assert a.scan_arrivals(c, t_ready=0.0) == b.scan_arrivals(
                c, t_ready=0.0
            )

    def test_all_off_is_transparent(self):
        inj = StreamFaultInjector(StreamFaultRates.all_off(), seed=1)
        for c in range(20):
            arrivals = inj.scan_arrivals(c, t_ready=30.0 * c + 3.0)
            assert len(arrivals) == 1
            assert arrivals[0].arrival_time == 30.0 * c + 3.0
            assert inj.corrupt_chunks(c, [b"abc"]) == [b"abc"]
        assert sum(inj.counts.values()) == 0

    def test_drop_and_duplicate(self):
        drop = StreamFaultInjector(
            StreamFaultRates.only("scan-drop", rate=1.0), seed=2
        )
        assert drop.scan_arrivals(0, t_ready=5.0) == []
        dup = StreamFaultInjector(
            StreamFaultRates.only("scan-duplicate", rate=1.0), seed=2
        )
        arrivals = dup.scan_arrivals(0, t_ready=5.0)
        assert [a.copy for a in arrivals] == [0, 1]
        assert arrivals[1].arrival_time >= arrivals[0].arrival_time

    def test_reorder_slips_past_next_cycle(self):
        inj = StreamFaultInjector(
            StreamFaultRates.only("scan-reorder", rate=1.0),
            seed=3, cycle_interval_s=30.0,
        )
        (arr,) = inj.scan_arrivals(0, t_ready=5.0)
        assert arr.arrival_time > 5.0 + 30.0

    def test_chunk_damage_detected_by_crc(self):
        inj = StreamFaultInjector(
            StreamFaultRates.only("chunk-bitflip", rate=1.0), seed=4
        )
        chunks = list(chunk_payload(b"q" * 20_000, 1000))
        damaged = inj.corrupt_chunks(0, chunks)
        asm = ChunkAssembler()
        asm.ingest_many(damaged)
        assert asm.n_rejected == 1
        assert len(asm.missing) == 1

    def test_retransmit_attempts_clean(self):
        inj = StreamFaultInjector(
            StreamFaultRates.only("chunk-truncate", rate=1.0), seed=5
        )
        chunks = list(chunk_payload(b"q" * 5_000, 1000))
        assert inj.corrupt_chunks(0, chunks, attempt=1) == chunks


# -- workflow integration -----------------------------------------------


def _workflow(seed=11, rates=None, **kw):
    injector = (
        None
        if rates is None
        else StreamFaultInjector(rates, seed=seed, cycle_interval_s=30.0)
    )
    return RealtimeWorkflow(
        WorkflowConfig(), seed=seed, stream_injector=injector, **kw
    )


def _numeric(rec):
    return (rec.cycle, rec.ok, rec.t_file, rec.t_transferred,
            rec.t_analysis, rec.t_product, rec.skipped_reason)


class TestWorkflowIngest:
    def test_fault_free_matches_direct_path(self):
        plain = _workflow()
        routed = _workflow(rates=StreamFaultRates.all_off())
        for c in range(30):
            plain.run_cycle(c)
            routed.run_cycle(c)
        assert [r.admission for r in routed.records] == ["admit"] * 30
        assert not any(r.degraded for r in routed.records)
        assert [_numeric(r) for r in plain.records] == [
            _numeric(r) for r in routed.records
        ]

    def test_faulted_run_deterministic(self):
        a = _workflow(rates=StreamFaultRates())
        b = _workflow(rates=StreamFaultRates())
        for c in range(60):
            a.run_cycle(c)
            b.run_cycle(c)
        assert a.records == b.records
        assert a.ingest.counters == b.ingest.counters

    def test_checkpoint_resume_identical(self):
        full = _workflow(rates=StreamFaultRates())
        for c in range(60):
            full.run_cycle(c)

        first = _workflow(rates=StreamFaultRates())
        for c in range(30):
            first.run_cycle(c)
        resumed = _workflow(rates=StreamFaultRates())
        resumed.load_state_dict(first.state_dict())
        for c in range(30, 60):
            resumed.run_cycle(c)
        assert resumed.records == full.records
        assert resumed.ingest.admitted_log == full.ingest.admitted_log

    def test_gate_invariants_under_faults(self):
        wf = _workflow(rates=StreamFaultRates(
            scan_delay=0.2, scan_reorder=0.2, scan_duplicate=0.2,
            scan_drop=0.1,
        ))
        for c in range(120):
            wf.run_cycle(c)
        assert wf.ingest.verify_invariants() == []
        assert all(
            r.admission in ("admit", "substitute-previous", "skip-cycle")
            for r in wf.records
        )
        skipped = [r for r in wf.records if r.admission == "skip-cycle"]
        assert all(r.skipped_reason == "scan-missing" for r in skipped)
        degraded = [r for r in wf.records if r.admission != "admit"]
        assert all(r.degraded for r in degraded if r.ok)

    def test_wait_fraction_validated(self):
        with pytest.raises(ValueError):
            _workflow(rates=StreamFaultRates.all_off(), wait_fraction=0.0)
        with pytest.raises(ValueError):
            _workflow(rates=StreamFaultRates.all_off(), wait_fraction=1.5)


# -- DACycler admission routing -----------------------------------------


@pytest.fixture(scope="module")
def mini_bda():
    from repro.config import LETKFConfig, RadarConfig, ScaleConfig
    from repro.core import BDASystem
    from repro.model.initial import convective_sounding

    scfg = ScaleConfig().reduced(nx=10, nz=8, members=3)
    lcfg = LETKFConfig(
        ensemble_size=3, analysis_zmin=0.0, analysis_zmax=20000.0,
        localization_h=15000.0, localization_v=5000.0,
        gross_error_refl_dbz=100.0, gross_error_doppler_ms=100.0,
        eigensolver="lapack",
    )
    bda = BDASystem(
        scfg, lcfg,
        RadarConfig().reduced(n_elevations=4, n_azimuths=16, n_gates=30),
        sounding=convective_sounding(), seed=99,
    )
    bda.trigger_convection(n=1, amplitude=4.0)
    bda.spinup_nature(60.0)
    return bda


def _next_scan(bda):
    """One observation step of the OSSE loop (mirrors BDASystem.cycle)."""
    bda.nature = bda.nature_model.integrate(bda.nature, 30.0)
    obs = bda.observe_nature()
    bda._inject_additive_spread()
    return obs, bda.nature.time


class TestCyclerAdmission:
    def test_admission_state_machine(self, mini_bda):
        radar = mini_bda.radar_config.name
        buf = IngestBuffer(radar)

        # admit: exactly the direct observation path
        obs, t = _next_scan(mini_bda)
        buf.offer(envelope_from_observations(
            radar, obs, t_valid=t, arrival_time=t
        ))
        d = buf.decide(t)
        assert d.action == ADMIT
        res = mini_bda.cycler.run_cycle(admission=d)
        assert res.mode == "analysis"
        assert res.admission == ADMIT

        # wait is transient, not runnable
        with pytest.raises(ValueError, match="not runnable"):
            mini_bda.cycler.run_cycle(admission=AdmissionDecision(WAIT, t))
        # passing both hand-off routes is ambiguous
        with pytest.raises(ValueError, match="not both"):
            mini_bda.cycler.run_cycle(observations=obs, admission=d)
        with pytest.raises(ValueError, match="unknown admission"):
            mini_bda.cycler.run_cycle(
                admission=AdmissionDecision("hold", t)
            )

        # substitute-previous: scan never arrives, previous payload is
        # assimilated as an explicitly degraded analysis
        _, t2 = _next_scan(mini_bda)
        d2 = buf.decide(t2)
        assert d2.action == SUBSTITUTE
        res2 = mini_bda.cycler.run_cycle(admission=d2)
        assert res2.mode == "substitute"
        assert res2.admission == SUBSTITUTE
        assert res2.n_members_used > 0  # an analysis did run

        # skip-cycle: nothing to assimilate, forecast-only free run
        empty = IngestBuffer(radar, allow_substitute=False)
        _, t3 = _next_scan(mini_bda)
        d3 = empty.decide(t3)
        assert d3.action == SKIP
        res3 = mini_bda.cycler.run_cycle(admission=d3)
        assert res3.mode == "free-run"
        assert res3.admission == SKIP


# -- chaos campaign ------------------------------------------------------


class TestIngestChaosCampaign:
    def test_smoke_gate_holds(self):
        camp = IngestChaosCampaign(StreamFaultRates(), seed=5)
        rep = camp.run(60)
        assert rep.n_cycles == 60
        assert rep.gate_ok
        assert rep.stale_admitted == 0
        assert rep.duplicate_admitted == 0
        assert rep.undecided_cycles == 0
        assert rep.n_transfers_hung == 0
        assert rep.n_transfers == 60
        # no outages in this campaign: every cycle carries a decision
        assert sum(rep.decisions.values()) == rep.n_cycles
        assert "PASS" in ingest_chaos_text(rep)

    def test_campaign_deterministic(self):
        a = IngestChaosCampaign(StreamFaultRates(), seed=6).run(40)
        b = IngestChaosCampaign(StreamFaultRates(), seed=6).run(40)
        assert a.as_dict() == b.as_dict()

    def test_report_round_trips_to_json(self):
        import json

        rep = IngestChaosCampaign(StreamFaultRates.all_off(), seed=7).run(20)
        d = json.loads(json.dumps(rep.as_dict()))
        assert d["gate_ok"] is True
        assert d["decisions"]["admit"] == 20
