import numpy as np
import pytest

from repro.config import reduced_inner_domain
from repro.grid import Grid
from repro.letkf.localization import (
    GC_SUPPORT_FACTOR,
    build_stencil,
    cutoff_radius,
    gaspari_cohn,
)


class TestGaspariCohn:
    def test_one_at_zero(self):
        assert gaspari_cohn(0.0) == pytest.approx(1.0)

    def test_zero_beyond_support(self):
        r = np.array([2.0, 2.5, 10.0])
        assert np.allclose(gaspari_cohn(r), 0.0)

    def test_monotone_decreasing(self):
        r = np.linspace(0, 2, 200)
        w = gaspari_cohn(r)
        assert np.all(np.diff(w) <= 1e-12)

    def test_bounded_01(self):
        r = np.linspace(0, 3, 300)
        w = gaspari_cohn(r)
        assert np.all(w >= 0) and np.all(w <= 1)

    def test_continuous_at_one(self):
        assert gaspari_cohn(1.0 - 1e-9) == pytest.approx(gaspari_cohn(1.0 + 1e-9), abs=1e-6)

    def test_symmetric(self):
        assert gaspari_cohn(-0.7) == pytest.approx(gaspari_cohn(0.7))

    def test_half_weight_near_two_thirds_support(self, ):
        # GC drops through 0.5 around r ~ 0.66 (Gaussian-like core)
        assert gaspari_cohn(0.5) > 0.5 > gaspari_cohn(0.8)


class TestCutoff:
    def test_cutoff_formula(self):
        assert cutoff_radius(2000.0) == pytest.approx(2 * GC_SUPPORT_FACTOR * 2000.0)

    def test_paper_localization_cutoff(self):
        # 2 km scale -> ~7.3 km support radius
        assert cutoff_radius(2000.0) == pytest.approx(7303.0, rel=0.01)


class TestStencil:
    @pytest.fixture(scope="class")
    def grid(self):
        return Grid(reduced_inner_domain(nx=32, nz=20))

    def test_contains_origin_with_weight_one(self, grid):
        st = build_stencil(grid, 8000.0, 4000.0)
        assert tuple(st.offsets[0]) == (0, 0, 0)
        assert st.weights[0] == pytest.approx(1.0)

    def test_sorted_descending(self, grid):
        st = build_stencil(grid, 8000.0, 4000.0)
        assert np.all(np.diff(st.weights) <= 1e-12)

    def test_max_points_truncation_keeps_nearest(self, grid):
        full = build_stencil(grid, 8000.0, 4000.0)
        trunc = build_stencil(grid, 8000.0, 4000.0, max_points=5)
        assert trunc.n == 5
        assert np.allclose(trunc.weights, full.weights[:5])

    def test_symmetric_offsets(self, grid):
        st = build_stencil(grid, 8000.0, 4000.0)
        offs = {tuple(o) for o in st.offsets}
        for o in offs:
            assert (-o[0], -o[1], -o[2]) in offs

    def test_larger_scale_more_points(self, grid):
        small = build_stencil(grid, 4000.0, 2000.0)
        large = build_stencil(grid, 12000.0, 6000.0)
        assert large.n > small.n

    def test_paper_scale_on_paper_mesh(self):
        # 2 km localization on the 500 m mesh: the stencil must stay well
        # under the Table-2 cap of 1000 obs per grid point per type
        from repro.config import paper_inner_domain

        g = Grid(paper_inner_domain())
        st = build_stencil(g, 2000.0, 2000.0, max_points=500)
        assert 50 < st.n <= 500

    def test_weights_match_distance_formula(self, grid):
        st = build_stencil(grid, 8000.0, 4000.0)
        dz = float(np.min(np.diff(grid.z_c)))
        for o, w in list(zip(st.offsets, st.weights))[:20]:
            dh = np.hypot(o[1] * grid.dy, o[2] * grid.dx)
            dv = abs(o[0]) * dz
            expect = gaspari_cohn(dh / (GC_SUPPORT_FACTOR * 8000.0)) * gaspari_cohn(
                dv / (GC_SUPPORT_FACTOR * 4000.0)
            )
            assert w == pytest.approx(expect, rel=1e-9)
