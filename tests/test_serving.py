"""Serving tier: tiles, freshness ladder, HTTP surface, load generator."""

import asyncio
import json

import numpy as np
import pytest

from repro.serving import (
    AsyncTileServer,
    CyclePublisher,
    LoadGenerator,
    PublishedCycle,
    ServingAPI,
    ServingStore,
    TileCache,
    demo_store,
    max_zoom,
    render_tile,
    run_selftest,
    tile_etag,
    tile_slices,
)
from repro.serving.http import _fetch
from repro.telemetry import Telemetry


def field(seed=0, shape=(32, 32)):
    return np.random.default_rng(seed).random(shape, dtype=np.float32) * 50.0


def good_cycle(cycle, *, t0=None, shape=(32, 32), seed=None):
    t = cycle * 30.0 if t0 is None else t0
    f = field(cycle if seed is None else seed, shape)
    return PublishedCycle(
        cycle=cycle, t_obs=t, t_product=t + 25.0, ok=True,
        fields={"rain": f, "dbz": f + 10.0},
    )


def failed_cycle(cycle):
    t = cycle * 30.0
    return PublishedCycle(
        cycle=cycle, t_obs=t, t_product=t, ok=False,
        meta={"skipped_reason": "deadline-miss"},
    )


class TestTiles:
    def test_max_zoom(self):
        assert max_zoom((48, 48)) == 5   # 2^5 = 32 <= 48 < 64
        assert max_zoom((32, 32)) == 5   # exactly one cell per tile edge
        assert max_zoom((1, 1)) == 0
        with pytest.raises(ValueError):
            max_zoom((0, 4))

    def test_zoom0_is_the_whole_field(self):
        rows, cols = tile_slices((40, 48), 0, 0, 0)
        assert (rows, cols) == (slice(0, 40), slice(0, 48))

    def test_tiles_partition_the_field(self):
        ny, nx = 33, 47  # deliberately not divisible
        for z in (1, 2):
            n = 1 << z
            cover = np.zeros((ny, nx), dtype=int)
            for y in range(n):
                for x in range(n):
                    rows, cols = tile_slices((ny, nx), z, x, y)
                    cover[rows, cols] += 1
            assert np.all(cover == 1)

    def test_y_counts_from_north(self):
        # row 0 of the field is the south edge; tile y=0 is the NORTH band
        rows, _ = tile_slices((32, 32), 1, 0, 0)
        assert rows == slice(16, 32)
        rows, _ = tile_slices((32, 32), 1, 0, 1)
        assert rows == slice(0, 16)

    def test_out_of_range_raises_keyerror(self):
        for z, x, y in ((1, 2, 0), (1, 0, -1), (99, 0, 0), (-1, 0, 0)):
            with pytest.raises(KeyError):
                tile_slices((32, 32), z, x, y)

    def test_etag_is_content_addressed(self):
        a, b = field(1), field(1)
        assert tile_etag(a, 1, 0, 1, kind="rainrate") == \
            tile_etag(b, 1, 0, 1, kind="rainrate")
        # different subregion, kind, or content -> different tag
        assert tile_etag(a, 1, 0, 0, kind="rainrate") != \
            tile_etag(a, 1, 0, 1, kind="rainrate")
        assert tile_etag(a, 1, 0, 1, kind="reflectivity") != \
            tile_etag(a, 1, 0, 1, kind="rainrate")
        b[0, 0] += 1.0
        assert tile_etag(b, 0, 0, 0, kind="rainrate") != \
            tile_etag(a, 0, 0, 0, kind="rainrate")

    def test_render_tile_is_png(self):
        png = render_tile(field(), 1, 0, 0, kind="rainrate")
        assert png.startswith(b"\x89PNG")

    def test_cache_lru_eviction_and_stats(self):
        c = TileCache(2)
        c.put(("a",), "e1", b"1")
        c.put(("b",), "e2", b"2")
        assert c.get(("a",)) == ("e1", b"1")   # refreshes 'a'
        c.put(("c",), "e3", b"3")              # evicts 'b' (LRU)
        assert c.get(("b",)) is None
        assert c.get(("a",)) is not None and c.get(("c",)) is not None
        assert c.hits == 3 and c.misses == 1
        assert c.hit_rate == pytest.approx(0.75)


class TestStoreLadder:
    def test_fresh_within_slo(self):
        store = ServingStore()
        store.publish("t", good_cycle(0))
        res = store.resolve("t", "latest", "rain", now=60.0)
        assert res.rung == "fresh" and res.cycle.cycle == 0
        assert res.staleness_s == 0.0

    def test_substitute_when_newest_failed(self):
        store = ServingStore()
        store.publish("t", good_cycle(0))
        store.publish("t", failed_cycle(1))
        res = store.resolve("t", "latest", "rain", now=40.0)
        assert res.rung == "substitute"
        assert res.cycle.cycle == 0  # the previous cycle's products

    def test_stale_past_slo_still_serves(self):
        store = ServingStore()
        store.publish("t", good_cycle(0))
        res = store.resolve("t", "latest", "rain", now=1000.0)
        assert res.rung == "stale"
        assert res.staleness_s == pytest.approx(1000.0 - 25.0 - 180.0)

    def test_stale_outranks_substitute(self):
        store = ServingStore()
        store.publish("t", good_cycle(0))
        store.publish("t", failed_cycle(1))
        res = store.resolve("t", "latest", "rain", now=2000.0)
        assert res.rung == "stale"

    def test_unavailable_is_none_never_raises(self):
        store = ServingStore()
        assert store.resolve("nope", "latest", "rain", 0.0) is None
        store.publish("t", failed_cycle(0))
        assert store.resolve("t", "latest", "rain", 0.0) is None
        store.publish("t", good_cycle(1))
        assert store.resolve("t", "latest", "unknown-product", 50.0) is None
        assert store.resolve("t", 99, "rain", 50.0) is None

    def test_partial_product_refused_at_publish(self):
        store = ServingStore()
        pc = good_cycle(0)
        del pc.fields["dbz"]
        with pytest.raises(ValueError, match="partial products"):
            store.publish("t", pc)

    def test_monotonic_publish_and_retention(self):
        store = ServingStore(retention=3)
        for c in range(6):
            store.publish("t", good_cycle(c))
        sh = store.shelf("t")
        assert [pc.cycle for pc in sh.cycles()] == [3, 4, 5]
        with pytest.raises(ValueError, match="increasing order"):
            store.publish("t", good_cycle(5))

    def test_catalog_dict_versioned_and_version_bumps(self):
        from repro.core.catalog import SCHEMA_VERSION

        store = ServingStore()
        store.publish("t", good_cycle(0))
        d1 = store.catalog_dict("t", now=30.0)
        assert d1["schema_version"] == SCHEMA_VERSION
        assert d1["products"] == ["dbz", "rain"]
        store.publish("t", good_cycle(1))
        d2 = store.catalog_dict("t", now=60.0)
        assert d2["version"] == d1["version"] + 1
        assert store.catalog_dict("nope", 0.0) is None


class TestPublisherHook:
    def test_workflow_publishes_every_cycle(self):
        from repro.config import WorkflowConfig
        from repro.workflow.realtime import RealtimeWorkflow

        store = ServingStore()
        wf = RealtimeWorkflow(
            WorkflowConfig(), seed=11,
            publisher=CyclePublisher(store, "solo", seed=3),
        )
        for k in range(8):
            wf.run_cycle(k, rain_area_km2=3000.0)
        sh = store.shelf("solo")
        assert len(sh) == len(wf.records) == 8
        # failed cycles land on the shelf too (the substitute rung
        # needs them to know the newest cycle missed)
        shelved_ok = [pc.ok for pc in sh.cycles()]
        assert shelved_ok == [r.ok for r in wf.records]

    def test_synthesized_fields_are_deterministic(self):
        s1, s2 = ServingStore(), ServingStore()

        class Rec:
            ok, cycle, t_obs, t_product = True, 4, 120.0, 145.0
            degraded, rain_area_km2 = False, 5000.0

        CyclePublisher(s1, "t", seed=9).on_record(Rec())
        CyclePublisher(s2, "t", seed=9).on_record(Rec())
        a = s1.shelf("t").newest().fields
        b = s2.shelf("t").newest().fields
        np.testing.assert_array_equal(a["rain"], b["rain"])
        np.testing.assert_array_equal(a["dbz"], b["dbz"])

    def test_fleet_attach_serving_populates_all_tenants(self):
        store = demo_store(n_tenants=2, rounds=6, seed=5)
        assert store.tenants == ["tenant-0", "tenant-1"]
        for t in store.tenants:
            assert len(store.shelf(t)) == 6


class TestHTTPHandler:
    def api(self, *, telemetry=None, now=60.0):
        store = ServingStore()
        store.publish("tokyo", good_cycle(0))
        store.publish("tokyo", good_cycle(1))
        api = ServingAPI(store, telemetry=telemetry, clock=lambda: now)
        return api

    def test_healthz_and_descriptor(self):
        api = self.api()
        assert api.handle("GET", "/healthz").status == 200
        resp = api.handle("GET", "/v1")
        doc = json.loads(resp.body)
        assert doc["api_version"] == 1 and "tokyo" in doc["tenants"]

    def test_tile_fetch_and_revalidation(self):
        api = self.api()
        path = "/v1/tokyo/tiles/rain/latest/1/0/0.png"
        r1 = api.handle("GET", path)
        assert r1.status == 200 and r1.body.startswith(b"\x89PNG")
        assert r1.headers["X-Repro-Cycle"] == "1"
        assert r1.headers["X-Repro-Rung"] == "fresh"
        etag = r1.headers["ETag"]
        r2 = api.handle("GET", path, {"If-None-Match": etag})
        assert r2.status == 304 and not r2.body
        assert api.stats["tile_not_modified"] == 1

    def test_etag_survives_unchanged_content_across_cycles(self):
        store = ServingStore()
        store.publish("t", good_cycle(0, seed=7))
        api = ServingAPI(store, clock=lambda: 30.0)
        path = "/v1/t/tiles/rain/latest/0/0/0.png"
        etag = api.handle("GET", path).headers["ETag"]
        # next cycle publishes the *same* field content
        store.publish("t", good_cycle(1, seed=7))
        r = api.handle("GET", path, {"If-None-Match": etag})
        assert r.status == 304          # no re-render, no payload
        assert r.headers["X-Repro-Cycle"] == "1"

    def test_missed_deadline_serves_previous_with_staleness_header(self):
        api = self.api()
        api.store.publish("tokyo", failed_cycle(2))
        r = api.handle("GET", "/v1/tokyo/tiles/rain/latest/1/0/0.png",
                       now=70.0)
        assert r.status == 200
        assert r.headers["X-Repro-Cycle"] == "1"
        assert r.headers["X-Repro-Rung"] == "substitute"
        assert "X-Repro-Staleness" in r.headers
        assert "Warning" in r.headers

    def test_errors_are_4xx_json_never_5xx(self):
        api = self.api()
        cases = [
            ("GET", "/v1/tokyo/tiles/rain/latest/9/0/0.png", 404),  # zoom
            ("GET", "/v1/tokyo/tiles/nope/latest/0/0/0.png", 404),
            ("GET", "/v1/ghost/tiles/rain/latest/0/0/0.png", 404),
            ("GET", "/v1/tokyo/tiles/rain/latest/a/b/c.png", 400),
            ("GET", "/v1/tokyo/tiles/rain/latest/0/0/0", 404),
            ("GET", "/nope", 404),
            ("POST", "/v1/tokyo/catalog", 405),
            ("GET", "/v1/ghost/catalog", 404),
        ]
        for method, path, want in cases:
            resp = api.handle(method, path)
            assert resp.status == want, (method, path, resp.status)
            assert json.loads(resp.body)["error"]

    def test_catalog_etag_revalidates_and_changes_on_publish(self):
        api = self.api()
        r1 = api.handle("GET", "/v1/tokyo/catalog")
        etag = r1.headers["ETag"]
        assert api.handle(
            "GET", "/v1/tokyo/catalog", {"If-None-Match": etag}
        ).status == 304
        api.store.publish("tokyo", good_cycle(2))
        r2 = api.handle("GET", "/v1/tokyo/catalog", {"If-None-Match": etag})
        assert r2.status == 200 and r2.headers["ETag"] != etag

    def test_serving_metrics_recorded(self):
        tel = Telemetry()
        api = self.api(telemetry=tel)
        api.handle("GET", "/v1/tokyo/tiles/rain/latest/0/0/0.png")
        api.handle("GET", "/v1/tokyo/tiles/rain/latest/0/0/0.png", now=900.0)
        text = tel.metrics.to_prometheus()
        assert "serving_requests_total" in text
        assert "serving_tiles_total" in text
        assert "serving_freshness_age_seconds" in text
        assert "serving_slo_breach_total" in text
        resp = api.handle("GET", "/metrics")
        assert resp.status == 200 and b"serving_requests_total" in resp.body


class TestAsyncServer:
    def test_selftest_round_trip(self):
        store = ServingStore()
        for c in range(3):
            store.publish("tokyo", good_cycle(c))
        lines = asyncio.run(run_selftest(store))
        assert any("etag revalidation: 304" in ln for ln in lines)
        assert any("stale-while-revalidate: 200" in ln for ln in lines)

    def test_backpressure_sheds_with_429(self):
        store = ServingStore()
        store.publish("t", good_cycle(0))
        api = ServingAPI(store, clock=lambda: 30.0)

        async def drive():
            server = AsyncTileServer(api, max_inflight=0)  # always saturated
            await server.start()
            try:
                return await _fetch(
                    server.host, server.port, "/v1/t/catalog"
                )
            finally:
                await server.aclose()

        status, headers, _ = asyncio.run(drive())
        assert status == 429
        assert headers["retry-after"] == "1"
        assert api.stats["shed"] == 1

    def test_keep_alive_serves_multiple_requests(self):
        store = ServingStore()
        store.publish("t", good_cycle(0))
        api = ServingAPI(store, clock=lambda: 30.0)

        async def drive():
            server = AsyncTileServer(api)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                statuses = []
                for _ in range(3):
                    writer.write(
                        b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
                    )
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    statuses.append(int(head.split(b" ")[1]))
                    body = await reader.readexactly(3)  # "ok\n"
                    assert body == b"ok\n"
                writer.close()
                await writer.wait_closed()
                return statuses
            finally:
                await server.aclose()

        assert asyncio.run(drive()) == [200, 200, 200]

    def test_malformed_request_is_400(self):
        store = ServingStore()
        store.publish("t", good_cycle(0))
        api = ServingAPI(store, clock=lambda: 30.0)

        async def drive():
            server = AsyncTileServer(api)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b"NOT A REQUEST\r\n\r\n")
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                writer.close()
                await writer.wait_closed()
                return int(head.split(b" ")[1])
            finally:
                await server.aclose()

        assert asyncio.run(drive()) == 400


class TestLoadGenerator:
    def make_api(self):
        store = ServingStore()
        for c in range(4):
            store.publish("a", good_cycle(c))
            store.publish("b", good_cycle(c, seed=100 + c))
        return ServingAPI(store, clock=lambda: 4 * 30.0)

    def test_request_stream_is_seed_deterministic(self):
        reports = []
        for _ in range(2):
            api = self.make_api()
            gen = LoadGenerator(api, n_clients=80, seed=42)
            rep = gen.run(rounds=2, now=120.0)
            reports.append(rep)
        a, b = reports
        assert a.n_requests == b.n_requests
        assert a.status_counts == b.status_counts
        assert a.not_modified == b.not_modified
        assert a.cache_hit_rate == b.cache_hit_rate

    def test_steady_state_hits_the_cache_gate(self):
        api = self.make_api()
        gen = LoadGenerator(api, n_clients=200, seed=1)
        gen.run(rounds=1, now=120.0)       # warm ETag memories
        rep = gen.run(rounds=2, now=120.0)  # steady state
        assert rep.cache_hit_rate >= 0.90
        assert all(code < 500 for code in rep.status_counts)
        assert rep.status_counts.get(304, 0) > 0

    def test_virtual_timer_makes_latency_deterministic(self):
        ticks = iter(range(100000))
        api = self.make_api()
        gen = LoadGenerator(
            api, n_clients=20, seed=3, timer=lambda: next(ticks) * 1e-3
        )
        rep = gen.run(rounds=1, now=120.0)
        # every request "took" exactly 1 ms on the virtual clock
        assert rep.p50_ms == pytest.approx(1.0)
        assert rep.p99_ms == pytest.approx(1.0)
