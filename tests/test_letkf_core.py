"""The LETKF transform against closed-form Kalman filter references."""

import numpy as np
import pytest

from repro.letkf.core import letkf_transform


def scalar_case(rng, m=40, no=5, err=0.5, spread=2.0, bias=1.0):
    xb = rng.normal(size=m) * spread + bias
    yo = rng.normal(size=no) * err
    xb_mean = xb.mean()
    Xb = xb - xb_mean
    dYb = np.broadcast_to(Xb[None, None, :], (1, no, m)).copy()
    d = (yo - xb_mean)[None, :]
    rinv = np.full((1, no), 1 / err**2)
    return xb, yo, xb_mean, Xb, dYb, d, rinv


class TestAgainstScalarKF:
    @pytest.mark.parametrize("backend", ["lapack", "kedv"])
    def test_posterior_mean_and_variance(self, backend):
        rng = np.random.default_rng(1)
        xb, yo, xb_mean, Xb, dYb, d, rinv = scalar_case(rng)
        W = letkf_transform(dYb, d, rinv, backend=backend)
        xa = xb_mean + Xb @ W[0]

        Pb = xb.var(ddof=1)
        R = 0.25
        K = Pb / (Pb + R / 5)
        assert xa.mean() == pytest.approx(xb_mean + K * (yo.mean() - xb_mean), rel=1e-5)
        assert xa.var(ddof=1) == pytest.approx((1 - K) * Pb, rel=1e-4)

    def test_float32_matches_float64(self):
        rng = np.random.default_rng(2)
        _, _, xb_mean, Xb, dYb, d, rinv = scalar_case(rng)
        W64 = letkf_transform(dYb, d, rinv)
        W32 = letkf_transform(
            dYb.astype(np.float32), d.astype(np.float32), rinv.astype(np.float32)
        )
        xa64 = xb_mean + Xb @ W64[0]
        xa32 = xb_mean + Xb @ W32[0].astype(np.float64)
        assert np.allclose(xa64, xa32, atol=1e-3)


class TestTransformProperties:
    def test_no_obs_identity(self):
        rng = np.random.default_rng(3)
        m = 10
        dYb = rng.normal(size=(4, 6, m))
        d = rng.normal(size=(4, 6))
        rinv = np.zeros((4, 6))
        W = letkf_transform(dYb, d, rinv)
        for g in range(4):
            assert np.allclose(W[g], np.eye(m))

    def test_mixed_obs_and_no_obs_points(self):
        rng = np.random.default_rng(4)
        m = 8
        dYb = rng.normal(size=(3, 5, m))
        d = rng.normal(size=(3, 5))
        rinv = np.zeros((3, 5))
        rinv[1] = 1.0  # only middle point has obs
        W = letkf_transform(dYb, d, rinv)
        assert np.allclose(W[0], np.eye(m))
        assert not np.allclose(W[1], np.eye(m))
        assert np.allclose(W[2], np.eye(m))

    def test_zero_innovation_keeps_mean(self):
        # d = 0: the analysis mean equals the background mean
        rng = np.random.default_rng(5)
        m, no = 12, 7
        dYb = rng.normal(size=(2, no, m))
        dYb -= dYb.mean(axis=2, keepdims=True)
        d = np.zeros((2, no))
        rinv = np.ones((2, no))
        W = letkf_transform(dYb, d, rinv)
        # column-mean of W == 1/m * ones => mean preserved
        colmean = W.mean(axis=2)
        # W = wbar + Wsym with sum over columns of Wsym ... check via action
        xb_pert = rng.normal(size=(2, 3, m))
        xb_pert -= xb_pert.mean(axis=2, keepdims=True)
        xa_pert = np.einsum("gvm,gmn->gvn", xb_pert, W)
        assert np.allclose(xa_pert.mean(axis=2), 0.0, atol=1e-10)

    def test_analysis_spread_never_exceeds_background(self):
        rng = np.random.default_rng(6)
        m, no = 16, 10
        dYb = rng.normal(size=(5, no, m))
        dYb -= dYb.mean(axis=2, keepdims=True)
        d = rng.normal(size=(5, no))
        rinv = np.ones((5, no)) * 2.0
        W = letkf_transform(dYb, d, rinv, rtpp_factor=0.0)
        # apply to the obs-space perturbations themselves
        ya = np.einsum("gom,gmn->gon", dYb, W)
        ya_pert = ya - ya.mean(axis=2, keepdims=True)
        var_a = np.sum(ya_pert**2, axis=2)
        var_b = np.sum(dYb**2, axis=2)
        assert np.all(var_a <= var_b * (1 + 1e-6))

    def test_stronger_obs_pull_mean_harder(self):
        rng = np.random.default_rng(7)
        m, no = 20, 4
        dYb = rng.normal(size=(1, no, m))
        dYb -= dYb.mean(axis=2, keepdims=True)
        d = np.ones((1, no)) * 2.0
        W_weak = letkf_transform(dYb, d, np.full((1, no), 0.1))
        W_strong = letkf_transform(dYb, d, np.full((1, no), 10.0))
        pert = dYb[:, 0, :][:, None, :]  # treat first obs row as a state var
        inc_weak = np.einsum("gvm,gmn->gvn", pert, W_weak).mean()
        inc_strong = np.einsum("gvm,gmn->gvn", pert, W_strong).mean()
        assert abs(inc_strong) > abs(inc_weak)

    def test_rtpp_preserves_mean_increment(self):
        rng = np.random.default_rng(8)
        m, no = 10, 6
        dYb = rng.normal(size=(2, no, m))
        dYb -= dYb.mean(axis=2, keepdims=True)
        d = rng.normal(size=(2, no))
        rinv = np.ones((2, no))
        W0 = letkf_transform(dYb, d, rinv, rtpp_factor=0.0)
        W95 = letkf_transform(dYb, d, rinv, rtpp_factor=0.95)
        # the mean weight vector (column average) is RTPP-invariant
        assert np.allclose(W0.mean(axis=2), W95.mean(axis=2), atol=1e-10)

    def test_rtpp_increases_spread_retention(self):
        rng = np.random.default_rng(9)
        m, no = 10, 20
        dYb = rng.normal(size=(1, no, m))
        dYb -= dYb.mean(axis=2, keepdims=True)
        d = rng.normal(size=(1, no))
        rinv = np.ones((1, no)) * 5.0
        W0 = letkf_transform(dYb, d, rinv, rtpp_factor=0.0)
        W95 = letkf_transform(dYb, d, rinv, rtpp_factor=0.95)
        ya0 = np.einsum("gom,gmn->gon", dYb, W0)
        ya95 = np.einsum("gom,gmn->gon", dYb, W95)
        sp0 = np.var(ya0 - ya0.mean(axis=2, keepdims=True))
        sp95 = np.var(ya95 - ya95.mean(axis=2, keepdims=True))
        assert sp95 > sp0

    def test_pa_trace_output(self):
        rng = np.random.default_rng(10)
        m, no = 8, 5
        dYb = rng.normal(size=(3, no, m))
        d = rng.normal(size=(3, no))
        rinv = np.ones((3, no))
        W, tr = letkf_transform(dYb, d, rinv, return_pa_trace=True)
        assert tr.shape == (3,)
        assert np.all(tr > 0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            letkf_transform(np.zeros((2, 3, 4)), np.zeros((2, 5)), np.zeros((2, 3)))
