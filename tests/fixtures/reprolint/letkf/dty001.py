"""DTY001 fixture: float64 discipline in the single-precision hot path."""
import numpy as np


def bad_dtype(x, n):
    a = np.zeros(n)  # positive: dtype-less ctor defaults to float64
    b = np.empty((n, n))  # positive
    c = np.asarray(x, dtype=np.float64)  # positive: literal f64 dtype
    d = np.full(n, 0.0, dtype="float64")  # positive: string f64 dtype
    e = x.astype(np.float64)  # positive: f64 promotion
    return a, b, c, d, e


def good_dtype(x, n, dtype):
    a = np.zeros(n, dtype=np.float32)  # negative: explicit f32
    b = np.empty((n, n), dtype=dtype)  # negative: dtype threaded through
    c = np.asarray(x, dtype=dtype)  # negative
    return a, b, c


def tolerated(x):
    acc = np.asarray(x, dtype=np.float64)  # reprolint: ok DTY001 f64 accumulator
    return acc
