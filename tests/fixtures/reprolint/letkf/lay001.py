"""LAY001 fixture: layout-floating GEMM operands near letkf_transform."""
import numpy as np


def bad_layouts(A, B, d):
    bad = A.T @ B  # positive: direct transposed view into '@'
    t = A.transpose(1, 0)
    also_bad = np.matmul(t, B)  # positive: name assigned from a transpose
    r = t.reshape(-1, B.shape[0])
    via_view = np.einsum("ij,jk->ik", r, B)  # positive: reshape keeps it floating
    return bad, also_bad, via_view


def good_layouts(A, B):
    pinned = np.ascontiguousarray(A.T)
    ok = pinned @ B  # negative: contiguity pinned before the GEMM
    c = A.T.copy()
    ok2 = np.dot(c, B)  # negative: .copy() materializes the layout
    return ok, ok2


def tolerated(A, B):
    w = np.einsum("ij,jk->ik", A.T, B)  # reprolint: ok LAY001 fixture suppression
    return w
