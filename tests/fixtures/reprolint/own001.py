"""OWN001 fixture: slab writes outside the designated owner (everywhere)."""


def bad_direct(out_slab, arr, lo, hi):
    out_slab.fields["U"][lo:hi] = arr  # positive: foreign slab write


def bad_block(slab, arr, k, lo, hi):
    block = slab.aux.get(k)
    block[lo:hi] = arr  # positive: write through a tracked block view


def bad_augmented(state_slab, arr):
    state_slab.fields["W"][:] += arr  # positive: augmented foreign write


def _pool_worker(slab, arr, lo, hi):
    slab.fields["U"][lo:hi] = arr  # negative: the sanctioned worker writer


def letkf_runner(slab, w, lo, hi):
    slab.fields["W"][lo:hi] = w  # negative: the sanctioned shard writer


def local_copy(slab, arr):
    private = {"U": arr.copy()}
    private["U"][0] = 0.0  # negative: heap-local dict, not a shared block
    return private


def tolerated(out_slab, arr, lo, hi):
    out_slab.fields["U"][lo:hi] = arr  # reprolint: ok OWN001 fixture demonstrates suppression
