"""MUT001 fixture: in-place mutation of kernel parameters (model/)."""
import numpy as np


def bad_mutations(state, work, aux):
    state[0] = 1.0  # positive: subscript assignment
    work[:, 0] += 2.0  # positive: augmented subscript assignment
    aux.fill(0.0)  # positive: mutating method
    np.add(state, work, out=state)  # positive: out= into a parameter
    np.copyto(work, state)  # positive: copyto into a parameter
    return state


def good_fresh_output(state, out):
    local = state.copy()
    local[0] = 1.0  # negative: mutates a local copy
    out[:] = local  # negative: 'out' parameters are the documented sink
    return out


def tolerated(state):
    state[0] = 0.0  # reprolint: ok MUT001 fixture demonstrates suppression
    return state
