"""SHM001 fixture: shared-memory segment lifecycle (applies everywhere)."""
from multiprocessing import shared_memory

REGISTRY = {}


def bad_create(size):
    seg = shared_memory.SharedMemory(create=True, size=size)  # positive
    return seg.buf[0]


def bad_attach(name):
    seg = shared_memory.SharedMemory(name=name)  # positive: never closed
    return bytes(seg.buf[:4])


def good_create(size):
    seg = shared_memory.SharedMemory(create=True, size=size)  # negative
    try:
        return bytes(seg.buf[:1])
    finally:
        seg.close()
        seg.unlink()


def good_registered(size):
    # negative: the handle escapes into the ownership registry, whose
    # sweep unlinks it
    seg = shared_memory.SharedMemory(create=True, size=size)
    REGISTRY[seg.name] = seg
    return seg.name


def good_handoff(name):
    seg = shared_memory.SharedMemory(name=name)  # negative: caller owns it
    return seg


def tolerated(size):
    seg = shared_memory.SharedMemory(create=True, size=size)  # reprolint: ok SHM001 fixture demonstrates suppression
    return seg.buf
