"""RES001 fixture: pool/executor/server lifecycle (applies everywhere)."""
from concurrent.futures import ThreadPoolExecutor

from repro.jitdt.protocol import ChunkAssembler


def bad_pool(items, fn):
    pool = ThreadPoolExecutor(max_workers=2)  # positive: never shut down
    return [pool.submit(fn, i) for i in items]


def bad_assembler(chunks):
    asm = ChunkAssembler()  # positive: buffered chunks never released
    asm.ingest_many(chunks)
    return asm.complete


def good_with(items, fn):
    with ThreadPoolExecutor(max_workers=2) as pool:  # negative: managed
        return list(pool.map(fn, items))


def good_closed(chunks):
    asm = ChunkAssembler()  # negative: closed on every exit path
    try:
        asm.ingest_many(chunks)
        return asm.missing
    finally:
        asm.close()


def good_handoff():
    asm = ChunkAssembler()  # negative: ownership handed to the caller
    return asm


def tolerated():
    pool = ThreadPoolExecutor(max_workers=1)  # reprolint: ok RES001 fixture demonstrates suppression
    return pool.submit(print)
