"""ASY002 fixture: un-awaited coroutines / dropped task handles."""
import asyncio


async def work():
    await asyncio.sleep(0)


async def bad(loop):
    asyncio.create_task(work())  # positive: task handle dropped
    asyncio.ensure_future(work())  # positive: future handle dropped
    loop.create_task(work())  # positive: loop-spelled fire-and-forget
    work()  # positive: coroutine built and discarded, never awaited


async def good(loop):
    await work()  # negative: awaited
    task = asyncio.create_task(work())  # negative: handle retained
    await task


async def tolerated():
    asyncio.create_task(work())  # reprolint: ok ASY002 fixture demonstrates suppression
