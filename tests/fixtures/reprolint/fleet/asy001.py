"""ASY001 fixture: blocking calls inside async defs (fleet//serving/)."""
import asyncio
import subprocess
import time

import numpy as np


async def bad_blocking(path, a, b):
    time.sleep(0.1)  # positive: sync sleep in a coroutine
    subprocess.run(["true"])  # positive: subprocess blocks the loop
    data = open(path).read()  # positive: sync file open
    text = path.read_text()  # positive: Path-style sync file I/O
    w = np.linalg.solve(a, b)  # positive: unbounded numpy work
    return data, text, w


async def good_async(path):
    await asyncio.sleep(0.1)  # negative: async sleep yields the loop
    data = await asyncio.to_thread(path.read_text)  # negative: off-loop
    return data


def sync_helper(path):
    time.sleep(0.0)  # negative: not a coroutine
    return open(path).read()  # negative: sync code may block


async def tolerated():
    time.sleep(0.0)  # reprolint: ok ASY001 fixture demonstrates suppression
