"""DET001 fixture: unseeded / global-state RNG (applies everywhere)."""
import random

import numpy as np
from numpy.random import default_rng


def bad_unseeded():
    rng = default_rng()  # positive: no seed argument
    other = np.random.default_rng(seed=None)  # positive: explicit None
    return rng, other


def bad_global_state():
    np.random.seed(0)  # positive: legacy global-state RNG
    x = np.random.normal(size=3)  # positive
    y = random.random()  # positive: stdlib global RNG
    return x, y


def good_seeded(seed):
    rng = np.random.default_rng(7)  # negative: explicit seed
    named = default_rng(seed=seed)  # negative: seed forwarded
    return rng.normal(size=3) + named.normal()  # negative: generator methods


def tolerated():
    rng = default_rng()  # reprolint: ok DET001 fixture demonstrates suppression
    return rng
