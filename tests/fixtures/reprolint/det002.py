"""DET002 fixture: wall-clock reads outside telemetry/ and workflow/."""
import datetime
import time


def bad_clock_reads():
    t = time.time()  # positive
    ns = time.time_ns()  # positive
    now = datetime.datetime.now()  # positive
    today = datetime.date.today()  # positive
    return t, ns, now, today


def good_monotonic():
    return time.perf_counter()  # negative: monotonic clocks are fine


def tolerated():
    # reprolint: ok DET002 fixture demonstrates line-above suppression
    return time.time()
