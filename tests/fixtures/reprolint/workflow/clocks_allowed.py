"""DET002 negative fixture: workflow/ is allowed to read wall clocks."""
import time


def scheduler_tick():
    return time.time()  # negative: DET002 is off under workflow/
