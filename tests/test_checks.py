"""Correctness tooling: reprolint rules, baseline, CLI, runtime sanitizer.

The golden fixtures under ``tests/fixtures/reprolint/`` carry one file
per rule with positive, negative, and suppressed sites; the directory
layout arms the path-scoped rules (``letkf/`` -> DTY001+LAY001,
``model/`` -> MUT001, ``workflow/`` -> DET002 off). The integration
test at the bottom locks in the sanitizer's bit-identity guarantee on a
real cycling run.
"""

import json
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.checks import (
    ArraySanitizer,
    Baseline,
    Finding,
    NULL_SANITIZER,
    RULES,
    SanitizerError,
    lint_file,
    lint_paths,
    lint_source,
    make_sanitizer,
)
from repro.checks.runner import EXIT_FINDINGS, EXIT_OK, EXIT_USAGE
from repro.checks.runner import main as checks_main

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "reprolint"


def codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------------------
# golden fixtures, one per rule
# ---------------------------------------------------------------------------


class TestRuleFixtures:
    def test_det001_unseeded_and_global_rng(self):
        found = lint_file(FIXTURES / "det001.py")
        assert codes(found) == ["DET001"] * 5
        assert [f.line for f in found] == [9, 10, 15, 16, 17]
        # negatives: the seeded constructors and generator methods stay clean
        assert all(f.line < 20 for f in found)

    def test_det002_wall_clock(self):
        found = lint_file(FIXTURES / "det002.py")
        assert codes(found) == ["DET002"] * 4
        assert [f.line for f in found] == [7, 8, 9, 10]

    def test_det002_off_under_workflow(self):
        assert lint_file(FIXTURES / "workflow" / "clocks_allowed.py") == []

    def test_det002_rearmed_for_fleet_paths(self):
        # fleet scheduling must be replayable: the workflow/telemetry
        # wall-clock exemption does not extend to any fleet/ path, even
        # one nested under workflow/.
        src = "import time\nt = time.time()\n"
        assert lint_source(src, "src/repro/workflow/clocks.py") == []
        assert codes(lint_source(src, "src/repro/fleet/scheduler.py")) == ["DET002"]
        assert codes(lint_source(src, "pkg/workflow/fleet/dispatch.py")) == ["DET002"]

    def test_dty001_dtype_discipline(self):
        found = lint_file(FIXTURES / "letkf" / "dty001.py")
        assert codes(found) == ["DTY001"] * 5
        assert [f.line for f in found] == [6, 7, 8, 9, 10]

    def test_dty001_scoped_to_hot_paths(self):
        # the same source outside letkf//eigen/ is not in scope
        source = (FIXTURES / "letkf" / "dty001.py").read_text()
        assert lint_source(source, "pkg/radar/dty001.py") == []

    def test_mut001_parameter_mutation(self):
        found = lint_file(FIXTURES / "model" / "mut001.py")
        assert codes(found) == ["MUT001"] * 5
        assert [f.line for f in found] == [6, 7, 8, 9, 10]

    def test_lay001_floating_operands(self):
        found = lint_file(FIXTURES / "letkf" / "lay001.py")
        assert codes(found) == ["LAY001"] * 3
        assert [f.line for f in found] == [6, 8, 10]

    def test_every_rule_has_a_fixture_hit(self):
        all_found = lint_paths([FIXTURES])
        assert set(codes(all_found)) == set(RULES)

    def test_suppression_one_per_fixture(self):
        for rel in (
            "det001.py",
            "det002.py",
            "letkf/dty001.py",
            "model/mut001.py",
            "letkf/lay001.py",
        ):
            everything = lint_file(FIXTURES / rel, include_suppressed=True)
            suppressed = [f for f in everything if f.suppressed]
            assert len(suppressed) == 1, rel
            # suppressed findings are hidden from the default listing
            assert suppressed[0] not in lint_file(FIXTURES / rel)


# ---------------------------------------------------------------------------
# linter mechanics
# ---------------------------------------------------------------------------


class TestLinterMechanics:
    def test_alias_resolution(self):
        src = "import numpy.random as nr\nrng = nr.default_rng()\n"
        assert codes(lint_source(src, "x.py")) == ["DET001"]

    def test_from_import_resolution(self):
        src = "from numpy.random import default_rng as mk\nr = mk()\n"
        assert codes(lint_source(src, "x.py")) == ["DET001"]

    def test_seed_kwarg_accepted(self):
        src = "from numpy.random import default_rng\nr = default_rng(seed=3)\n"
        assert lint_source(src, "x.py") == []

    def test_unrelated_name_not_resolved(self):
        src = "class T:\n    def time(self):\n        return 0\nt = T().time()\n"
        assert lint_source(src, "x.py") == []

    def test_suppression_on_multiline_expression(self):
        src = (
            "import time\n"
            "t = time.time(\n"
            ")  # reprolint: ok DET002 fixture\n"
        )
        assert lint_source(src, "x.py") == []

    def test_suppression_requires_matching_code(self):
        src = "import time\nt = time.time()  # reprolint: ok DET001 wrong code\n"
        assert codes(lint_source(src, "x.py")) == ["DET002"]

    def test_finding_text_and_dict(self):
        (f,) = lint_source("import time\nt = time.time()\n", "a/b.py")
        assert f.text().startswith("a/b.py:2:")
        d = f.to_dict()
        assert d["code"] == "DET002" and d["hint"] == RULES["DET002"].hint
        assert d["source"] == "t = time.time()"

    def test_out_params_exempt_from_mut001(self):
        src = (
            "def kernel(x, out):\n"
            "    out[:] = x\n"
            "    return out\n"
        )
        assert lint_source(src, "pkg/model/k.py") == []

    def test_pinned_operand_not_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(A, B):\n"
            "    C = np.ascontiguousarray(A.T)\n"
            "    return C @ B\n"
        )
        assert lint_source(src, "pkg/letkf/f.py") == []

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n", "x.py")


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def _findings(self):
        return lint_file(FIXTURES / "det002.py")

    def test_roundtrip(self, tmp_path):
        found = self._findings()
        b = Baseline.from_findings(found)
        p = b.save(tmp_path / "base.json")
        loaded = Baseline.load(p)
        assert len(loaded) == len(found)
        new, old = loaded.split(found)
        assert new == [] and len(old) == len(found)

    def test_missing_file_is_empty(self, tmp_path):
        b = Baseline.load(tmp_path / "absent.json")
        assert len(b) == 0
        new, old = b.split(self._findings())
        assert old == [] and len(new) == 4

    def test_keys_survive_line_shifts(self):
        found = self._findings()
        b = Baseline.from_findings(found)
        shifted = [
            Finding(
                path=f.path, line=f.line + 40, col=f.col, code=f.code,
                message=f.message, source=f.source,
            )
            for f in found
        ]
        new, old = b.split(shifted)
        assert new == [] and len(old) == len(found)

    def test_duplicated_pattern_is_new(self):
        found = self._findings()
        b = Baseline.from_findings(found)
        new, old = b.split(found + [found[0]])
        assert len(old) == len(found) and new == [found[0]]

    def test_bad_version_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            Baseline.load(p)


# ---------------------------------------------------------------------------
# CLI runner
# ---------------------------------------------------------------------------


class TestRunnerCLI:
    def test_findings_exit_code_and_text(self, tmp_path, capsys):
        rc = checks_main(
            ["lint", str(FIXTURES / "det002.py"),
             "--baseline", str(tmp_path / "none.json")]
        )
        out = capsys.readouterr().out
        assert rc == EXIT_FINDINGS
        assert "DET002" in out and "hint:" in out
        assert "4 new finding(s)" in out

    def test_clean_exit_code(self, tmp_path, capsys):
        rc = checks_main(
            ["lint", str(FIXTURES / "workflow"),
             "--baseline", str(tmp_path / "none.json")]
        )
        assert rc == EXIT_OK
        assert "reprolint: clean" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        rc = checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--format", "json",
             "--baseline", str(tmp_path / "none.json")]
        )
        assert rc == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "reprolint"
        assert payload["summary"] == {"new": 4, "baselined": 0}
        assert set(payload["rules"]) == set(RULES)
        assert all("hint" in f for f in payload["new"])

    def test_github_format(self, tmp_path, capsys):
        checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--format", "github",
             "--baseline", str(tmp_path / "none.json")]
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(l.startswith("::") for l in lines)
        assert sum(l.startswith("::error ") for l in lines) == 4
        assert lines[-1].startswith("::notice ")

    def test_write_then_gate_with_baseline(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        rc = checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--write-baseline",
             "--baseline", str(base)]
        )
        assert rc == EXIT_OK and base.exists()
        capsys.readouterr()
        rc = checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--baseline", str(base)]
        )
        out = capsys.readouterr().out
        assert rc == EXIT_OK
        assert "4 baselined finding(s) not shown" in out

    def test_no_baseline_overrides(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--write-baseline",
             "--baseline", str(base)]
        )
        capsys.readouterr()
        rc = checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--baseline", str(base),
             "--no-baseline"]
        )
        assert rc == EXIT_FINDINGS

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        rc = checks_main(["lint", str(tmp_path / "nope")])
        assert rc == EXIT_USAGE
        assert "no such path" in capsys.readouterr().err

    def test_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--format", "json",
             "--output", str(out_file),
             "--baseline", str(tmp_path / "none.json")]
        )
        capsys.readouterr()
        assert json.loads(out_file.read_text())["summary"]["new"] == 4

    def test_rules_command(self, capsys):
        assert checks_main(["rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out
        assert "fix:" in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.checks", "rules"],
            capture_output=True, text=True, cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == EXIT_OK
        assert "DET001" in proc.stdout


# ---------------------------------------------------------------------------
# the repo itself is lint-clean
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_src_has_no_findings(self):
        findings = lint_paths([REPO / "src"])
        assert findings == [], "\n".join(f.text() for f in findings)

    def test_committed_baseline_is_empty(self):
        baseline = Baseline.load(REPO / "reprolint.baseline.json")
        assert len(baseline) == 0


# ---------------------------------------------------------------------------
# runtime sanitizer
# ---------------------------------------------------------------------------


class TestArraySanitizer:
    def test_dtype_contract(self):
        san = ArraySanitizer()
        ok = {"x": np.zeros(3, dtype=np.float32)}
        san.check_dtype("k", ok, np.float32)
        bad = {"x": np.zeros(3, dtype=np.float64)}
        with pytest.raises(SanitizerError, match="dtype float64"):
            san.check_dtype("k", bad, np.float32)

    def test_contiguity_contract(self):
        san = ArraySanitizer()
        a = np.zeros((4, 5), dtype=np.float32)
        san.check_contiguous("k", {"a": a})
        with pytest.raises(SanitizerError, match="not C-contiguous"):
            san.check_contiguous("k", {"a": a.T})

    def test_guard_traps_input_mutation(self):
        san = ArraySanitizer()
        x = np.zeros(4, dtype=np.float32)
        with pytest.raises(SanitizerError, match="in-place write"):
            with san.guard("kernel", {"x": x}):
                x[0] = 1.0
        # flags restored, value untouched
        assert x.flags.writeable and x[0] == 0.0

    def test_guard_restores_writeable_on_success(self):
        san = ArraySanitizer()
        x = np.zeros(4, dtype=np.float32)
        with san.guard("kernel", {"x": x}):
            assert not x.flags.writeable
        assert x.flags.writeable

    def test_guard_leaves_readonly_inputs_readonly(self):
        san = ArraySanitizer()
        x = np.zeros(4, dtype=np.float32)
        x.flags.writeable = False
        with san.guard("kernel", {"x": x}):
            pass
        assert not x.flags.writeable

    def test_nan_creation_trapped(self):
        san = ArraySanitizer()
        finite = {"x": np.ones(3, dtype=np.float32)}
        with san.guard("kernel", finite) as rec:
            out = {"y": np.array([1.0, np.nan], dtype=np.float32)}
        with pytest.raises(SanitizerError, match="non-finite"):
            san.check_outputs(rec, out)

    def test_nonfinite_inputs_do_not_trap(self):
        # a degraded ensemble already carrying NaN must not re-raise
        san = ArraySanitizer()
        dirty = {"x": np.array([np.nan], dtype=np.float32)}
        with san.guard("kernel", dirty) as rec:
            out = {"y": np.array([np.inf], dtype=np.float32)}
        san.check_outputs(rec, out)  # no raise

    def test_integer_arrays_ignored_by_finiteness(self):
        san = ArraySanitizer()
        with san.guard("kernel", {"i": np.arange(3)}) as rec:
            pass
        san.check_outputs(rec, {"j": np.arange(3)})

    def test_entry_checks_via_guard(self):
        san = ArraySanitizer()
        bad = {"x": np.zeros(3, dtype=np.float64)}
        with pytest.raises(SanitizerError):
            with san.guard("k", bad, expect_dtype=np.float32):
                pass

    def test_call_counter(self):
        san = ArraySanitizer()
        for _ in range(3):
            with san.guard("letkf", {}):
                pass
        assert san.calls["letkf"] == 3

    def test_null_sanitizer_is_free(self):
        x = np.zeros(3, dtype=np.float64)
        NULL_SANITIZER.check_dtype("k", {"x": x}, np.float32)  # no raise
        with NULL_SANITIZER.guard("k", {"x": x}) as rec:
            assert rec is None
            x[0] = 1.0  # not frozen
        NULL_SANITIZER.check_outputs(rec, {"x": x})
        assert not NULL_SANITIZER.enabled

    def test_make_sanitizer(self):
        assert make_sanitizer(False) is NULL_SANITIZER
        assert isinstance(make_sanitizer(True), ArraySanitizer)
        assert make_sanitizer(True).enabled


class TestSanitizedBackend:
    def _state(self, dtype=np.float32):
        fields = {"theta": np.ones((2, 3), dtype=dtype)}
        return SimpleNamespace(
            fields=fields, aux={}, grid=SimpleNamespace(dtype=np.dtype(dtype))
        )

    def _wrap(self, inner):
        from repro.core.backends import SanitizedBackend

        return SanitizedBackend(inner)

    def test_make_backend_arms_from_config(self):
        from repro.config import ExecutionConfig
        from repro.core.backends import SanitizedBackend, make_backend

        b = make_backend(ExecutionConfig(backend="serial", sanitize=True))
        assert isinstance(b, SanitizedBackend)
        assert b.name == "serial"  # telemetry span names unchanged
        assert b.sanitizer.enabled
        # off by default, and never double-wrapped
        from repro.core.backends import VectorizedBackend

        assert isinstance(make_backend("vectorized"), VectorizedBackend)
        assert make_backend(b, sanitize=True) is b

    def test_clean_forecast_passes_through(self):
        state = self._state()
        out_state = self._state()
        inner = SimpleNamespace(
            name="stub", forecast=lambda model, s, d: out_state
        )
        wrapped = self._wrap(inner)
        assert wrapped.forecast(None, state, 30.0) is out_state
        assert wrapped.sanitizer.calls["forecast"] == 1

    def test_dtype_drift_trapped(self):
        state = self._state(dtype=np.float64)
        state.grid = SimpleNamespace(dtype=np.dtype(np.float32))
        inner = SimpleNamespace(name="stub", forecast=lambda m, s, d: s)
        with pytest.raises(SanitizerError, match="dtype"):
            self._wrap(inner).forecast(None, state, 30.0)

    def test_input_mutation_trapped(self):
        state = self._state()

        def evil(model, s, d):
            s.fields["theta"][0, 0] = 99.0
            return s

        inner = SimpleNamespace(name="stub", forecast=evil)
        with pytest.raises(SanitizerError, match="in-place write"):
            self._wrap(inner).forecast(None, state, 30.0)
        assert state.fields["theta"][0, 0] == 1.0

    def test_nan_creation_trapped(self):
        state = self._state()

        def broken(model, s, d):
            out = self._state()
            out.fields["theta"][0, 0] = np.nan
            return out

        inner = SimpleNamespace(name="stub", forecast=broken)
        with pytest.raises(SanitizerError, match="non-finite"):
            self._wrap(inner).forecast(None, state, 30.0)


# ---------------------------------------------------------------------------
# integration: sanitized cycling is bit-identical
# ---------------------------------------------------------------------------


def _mini_system(sanitize):
    from repro.config import ExecutionConfig, LETKFConfig, RadarConfig, ScaleConfig
    from repro.core import BDASystem
    from repro.model.initial import convective_sounding

    scfg = ScaleConfig().reduced(nx=8, nz=8, members=3)
    lcfg = LETKFConfig(
        ensemble_size=3,
        analysis_zmin=0.0,
        analysis_zmax=20000.0,
        localization_h=12000.0,
        localization_v=4000.0,
        gross_error_refl_dbz=100.0,
        gross_error_doppler_ms=100.0,
    )
    bda = BDASystem(
        scfg, lcfg, RadarConfig().reduced(),
        sounding=convective_sounding(cape_factor=1.1), seed=11,
        backend=ExecutionConfig(backend="vectorized", sanitize=sanitize),
    )
    bda.trigger_convection(n=1, amplitude=5.0)
    bda.spinup_nature(300.0)
    bda.cycle()
    return bda


class TestSanitizedCycleBitIdentity:
    def test_sanitize_on_equals_off(self):
        plain = _mini_system(sanitize=False)
        guarded = _mini_system(sanitize=True)
        for name, arr in plain.ensemble.state.fields.items():
            other = guarded.ensemble.state.fields[name]
            assert arr.dtype == other.dtype
            assert np.array_equal(arr, other, equal_nan=True), name
        # the guarded run actually went through the sanitizer
        calls = guarded.backend.sanitizer.calls
        assert calls["forecast"] >= 1 and calls["letkf"] >= 1
        # and the cycler shares the backend's sanitizer instance
        assert guarded.cycler.sanitizer is guarded.backend.sanitizer
