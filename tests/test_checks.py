"""Correctness tooling: reprolint rules, baseline, CLI, runtime sanitizer.

The golden fixtures under ``tests/fixtures/reprolint/`` carry one file
per rule with positive, negative, and suppressed sites; the directory
layout arms the path-scoped rules (``letkf/`` -> DTY001+LAY001,
``model/`` -> MUT001, ``workflow/`` -> DET002 off, ``fleet/`` ->
ASY001+ASY002; SHM001/RES001/OWN001 apply everywhere). The
integration tests at the bottom lock in the bit-identity guarantees of
both runtime sanitizers (array + concurrency) on real cycling runs.
"""

import asyncio
import json
import subprocess
import sys
import time
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.checks import (
    ArraySanitizer,
    Baseline,
    ConcurrencySanitizer,
    Finding,
    LoopStallProbe,
    NULL_CONCURRENCY,
    NULL_SANITIZER,
    OwnershipError,
    RULES,
    SanitizerError,
    SegmentLeakMonitor,
    lint_file,
    lint_paths,
    lint_source,
    make_concurrency_sanitizer,
    make_sanitizer,
)
from repro.checks.concurrency import parent_owner, worker_owner
from repro.checks.runner import EXIT_FINDINGS, EXIT_OK, EXIT_USAGE
from repro.checks.runner import main as checks_main

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "reprolint"


def codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------------------
# golden fixtures, one per rule
# ---------------------------------------------------------------------------


class TestRuleFixtures:
    def test_det001_unseeded_and_global_rng(self):
        found = lint_file(FIXTURES / "det001.py")
        assert codes(found) == ["DET001"] * 5
        assert [f.line for f in found] == [9, 10, 15, 16, 17]
        # negatives: the seeded constructors and generator methods stay clean
        assert all(f.line < 20 for f in found)

    def test_det002_wall_clock(self):
        found = lint_file(FIXTURES / "det002.py")
        assert codes(found) == ["DET002"] * 4
        assert [f.line for f in found] == [7, 8, 9, 10]

    def test_det002_off_under_workflow(self):
        assert lint_file(FIXTURES / "workflow" / "clocks_allowed.py") == []

    def test_det002_rearmed_for_fleet_paths(self):
        # fleet scheduling must be replayable: the workflow/telemetry
        # wall-clock exemption does not extend to any fleet/ path, even
        # one nested under workflow/.
        src = "import time\nt = time.time()\n"
        assert lint_source(src, "src/repro/workflow/clocks.py") == []
        assert codes(lint_source(src, "src/repro/fleet/scheduler.py")) == ["DET002"]
        assert codes(lint_source(src, "pkg/workflow/fleet/dispatch.py")) == ["DET002"]

    def test_dty001_dtype_discipline(self):
        found = lint_file(FIXTURES / "letkf" / "dty001.py")
        assert codes(found) == ["DTY001"] * 5
        assert [f.line for f in found] == [6, 7, 8, 9, 10]

    def test_dty001_scoped_to_hot_paths(self):
        # the same source outside letkf//eigen/ is not in scope
        source = (FIXTURES / "letkf" / "dty001.py").read_text()
        assert lint_source(source, "pkg/radar/dty001.py") == []

    def test_mut001_parameter_mutation(self):
        found = lint_file(FIXTURES / "model" / "mut001.py")
        assert codes(found) == ["MUT001"] * 5
        assert [f.line for f in found] == [6, 7, 8, 9, 10]

    def test_lay001_floating_operands(self):
        found = lint_file(FIXTURES / "letkf" / "lay001.py")
        assert codes(found) == ["LAY001"] * 3
        assert [f.line for f in found] == [6, 8, 10]

    def test_asy001_blocking_in_async(self):
        found = lint_file(FIXTURES / "fleet" / "asy001.py")
        assert codes(found) == ["ASY001"] * 5
        assert [f.line for f in found] == [10, 11, 12, 13, 14]

    def test_asy001_scoped_to_fleet_and_serving(self):
        # the same source off the async tiers is out of scope; under
        # serving/ it is just as armed as under fleet/
        source = (FIXTURES / "fleet" / "asy001.py").read_text()
        assert lint_source(source, "pkg/radar/asy001.py") == []
        found = lint_source(source, "src/repro/serving/tiles.py")
        assert codes(found) == ["ASY001"] * 5

    def test_asy002_unawaited_coroutines(self):
        found = lint_file(FIXTURES / "fleet" / "asy002.py")
        assert codes(found) == ["ASY002"] * 4
        assert [f.line for f in found] == [10, 11, 12, 13]

    def test_shm001_segment_lifecycle(self):
        found = lint_file(FIXTURES / "shm001.py")
        assert codes(found) == ["SHM001"] * 2
        assert [f.line for f in found] == [8, 13]

    def test_res001_resource_lifecycle(self):
        found = lint_file(FIXTURES / "res001.py")
        assert codes(found) == ["RES001"] * 2
        assert [f.line for f in found] == [8, 13]

    def test_own001_foreign_slab_writes(self):
        found = lint_file(FIXTURES / "own001.py")
        assert codes(found) == ["OWN001"] * 3
        assert [f.line for f in found] == [5, 10, 14]

    def test_own001_off_inside_the_slab_module(self):
        # shm.py builds the views it hands out; its writes are the
        # implementation of ownership, not a violation of it
        src = 'def fill(out_slab, arr):\n    out_slab.fields["U"][:] = arr\n'
        assert codes(lint_source(src, "src/repro/core/x.py")) == ["OWN001"]
        assert lint_source(src, "src/repro/model/shm.py") == []

    def test_every_rule_has_a_fixture_hit(self):
        all_found = lint_paths([FIXTURES])
        assert set(codes(all_found)) == set(RULES)

    def test_suppression_one_per_fixture(self):
        for rel in (
            "det001.py",
            "det002.py",
            "letkf/dty001.py",
            "model/mut001.py",
            "letkf/lay001.py",
            "fleet/asy001.py",
            "fleet/asy002.py",
            "shm001.py",
            "res001.py",
            "own001.py",
        ):
            everything = lint_file(FIXTURES / rel, include_suppressed=True)
            suppressed = [f for f in everything if f.suppressed]
            assert len(suppressed) == 1, rel
            # suppressed findings are hidden from the default listing
            assert suppressed[0] not in lint_file(FIXTURES / rel)


# ---------------------------------------------------------------------------
# linter mechanics
# ---------------------------------------------------------------------------


class TestLinterMechanics:
    def test_alias_resolution(self):
        src = "import numpy.random as nr\nrng = nr.default_rng()\n"
        assert codes(lint_source(src, "x.py")) == ["DET001"]

    def test_from_import_resolution(self):
        src = "from numpy.random import default_rng as mk\nr = mk()\n"
        assert codes(lint_source(src, "x.py")) == ["DET001"]

    def test_seed_kwarg_accepted(self):
        src = "from numpy.random import default_rng\nr = default_rng(seed=3)\n"
        assert lint_source(src, "x.py") == []

    def test_unrelated_name_not_resolved(self):
        src = "class T:\n    def time(self):\n        return 0\nt = T().time()\n"
        assert lint_source(src, "x.py") == []

    def test_suppression_on_multiline_expression(self):
        src = (
            "import time\n"
            "t = time.time(\n"
            ")  # reprolint: ok DET002 fixture\n"
        )
        assert lint_source(src, "x.py") == []

    def test_suppression_requires_matching_code(self):
        src = "import time\nt = time.time()  # reprolint: ok DET001 wrong code\n"
        assert codes(lint_source(src, "x.py")) == ["DET002"]

    def test_finding_text_and_dict(self):
        (f,) = lint_source("import time\nt = time.time()\n", "a/b.py")
        assert f.text().startswith("a/b.py:2:")
        d = f.to_dict()
        assert d["code"] == "DET002" and d["hint"] == RULES["DET002"].hint
        assert d["source"] == "t = time.time()"

    def test_out_params_exempt_from_mut001(self):
        src = (
            "def kernel(x, out):\n"
            "    out[:] = x\n"
            "    return out\n"
        )
        assert lint_source(src, "pkg/model/k.py") == []

    def test_pinned_operand_not_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(A, B):\n"
            "    C = np.ascontiguousarray(A.T)\n"
            "    return C @ B\n"
        )
        assert lint_source(src, "pkg/letkf/f.py") == []

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n", "x.py")


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def _findings(self):
        return lint_file(FIXTURES / "det002.py")

    def test_roundtrip(self, tmp_path):
        found = self._findings()
        b = Baseline.from_findings(found)
        p = b.save(tmp_path / "base.json")
        loaded = Baseline.load(p)
        assert len(loaded) == len(found)
        new, old = loaded.split(found)
        assert new == [] and len(old) == len(found)

    def test_missing_file_is_empty(self, tmp_path):
        b = Baseline.load(tmp_path / "absent.json")
        assert len(b) == 0
        new, old = b.split(self._findings())
        assert old == [] and len(new) == 4

    def test_keys_survive_line_shifts(self):
        found = self._findings()
        b = Baseline.from_findings(found)
        shifted = [
            Finding(
                path=f.path, line=f.line + 40, col=f.col, code=f.code,
                message=f.message, source=f.source,
            )
            for f in found
        ]
        new, old = b.split(shifted)
        assert new == [] and len(old) == len(found)

    def test_duplicated_pattern_is_new(self):
        found = self._findings()
        b = Baseline.from_findings(found)
        new, old = b.split(found + [found[0]])
        assert len(old) == len(found) and new == [found[0]]

    def test_bad_version_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError):
            Baseline.load(p)


# ---------------------------------------------------------------------------
# CLI runner
# ---------------------------------------------------------------------------


class TestRunnerCLI:
    def test_findings_exit_code_and_text(self, tmp_path, capsys):
        rc = checks_main(
            ["lint", str(FIXTURES / "det002.py"),
             "--baseline", str(tmp_path / "none.json")]
        )
        out = capsys.readouterr().out
        assert rc == EXIT_FINDINGS
        assert "DET002" in out and "hint:" in out
        assert "4 new finding(s)" in out

    def test_clean_exit_code(self, tmp_path, capsys):
        rc = checks_main(
            ["lint", str(FIXTURES / "workflow"),
             "--baseline", str(tmp_path / "none.json")]
        )
        assert rc == EXIT_OK
        assert "reprolint: clean" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        rc = checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--format", "json",
             "--baseline", str(tmp_path / "none.json")]
        )
        assert rc == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "reprolint"
        assert payload["summary"] == {"new": 4, "baselined": 0}
        assert set(payload["rules"]) == set(RULES)
        assert all("hint" in f for f in payload["new"])

    def test_github_format(self, tmp_path, capsys):
        checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--format", "github",
             "--baseline", str(tmp_path / "none.json")]
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(l.startswith("::") for l in lines)
        assert sum(l.startswith("::error ") for l in lines) == 4
        assert lines[-1].startswith("::notice ")

    def test_write_then_gate_with_baseline(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        rc = checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--write-baseline",
             "--baseline", str(base)]
        )
        assert rc == EXIT_OK and base.exists()
        capsys.readouterr()
        rc = checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--baseline", str(base)]
        )
        out = capsys.readouterr().out
        assert rc == EXIT_OK
        assert "4 baselined finding(s) not shown" in out

    def test_no_baseline_overrides(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--write-baseline",
             "--baseline", str(base)]
        )
        capsys.readouterr()
        rc = checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--baseline", str(base),
             "--no-baseline"]
        )
        assert rc == EXIT_FINDINGS

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        rc = checks_main(["lint", str(tmp_path / "nope")])
        assert rc == EXIT_USAGE
        assert "no such path" in capsys.readouterr().err

    def test_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        checks_main(
            ["lint", str(FIXTURES / "det002.py"), "--format", "json",
             "--output", str(out_file),
             "--baseline", str(tmp_path / "none.json")]
        )
        capsys.readouterr()
        assert json.loads(out_file.read_text())["summary"]["new"] == 4

    def test_rules_command(self, capsys):
        assert checks_main(["rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for code in RULES:
            assert code in out
        assert "fix:" in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.checks", "rules"],
            capture_output=True, text=True, cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == EXIT_OK
        assert "DET001" in proc.stdout


# ---------------------------------------------------------------------------
# the repo itself is lint-clean
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_src_has_no_findings(self):
        findings = lint_paths([REPO / "src"])
        assert findings == [], "\n".join(f.text() for f in findings)

    def test_committed_baseline_is_empty(self):
        baseline = Baseline.load(REPO / "reprolint.baseline.json")
        assert len(baseline) == 0


# ---------------------------------------------------------------------------
# runtime sanitizer
# ---------------------------------------------------------------------------


class TestArraySanitizer:
    def test_dtype_contract(self):
        san = ArraySanitizer()
        ok = {"x": np.zeros(3, dtype=np.float32)}
        san.check_dtype("k", ok, np.float32)
        bad = {"x": np.zeros(3, dtype=np.float64)}
        with pytest.raises(SanitizerError, match="dtype float64"):
            san.check_dtype("k", bad, np.float32)

    def test_contiguity_contract(self):
        san = ArraySanitizer()
        a = np.zeros((4, 5), dtype=np.float32)
        san.check_contiguous("k", {"a": a})
        with pytest.raises(SanitizerError, match="not C-contiguous"):
            san.check_contiguous("k", {"a": a.T})

    def test_guard_traps_input_mutation(self):
        san = ArraySanitizer()
        x = np.zeros(4, dtype=np.float32)
        with pytest.raises(SanitizerError, match="in-place write"):
            with san.guard("kernel", {"x": x}):
                x[0] = 1.0
        # flags restored, value untouched
        assert x.flags.writeable and x[0] == 0.0

    def test_guard_restores_writeable_on_success(self):
        san = ArraySanitizer()
        x = np.zeros(4, dtype=np.float32)
        with san.guard("kernel", {"x": x}):
            assert not x.flags.writeable
        assert x.flags.writeable

    def test_guard_leaves_readonly_inputs_readonly(self):
        san = ArraySanitizer()
        x = np.zeros(4, dtype=np.float32)
        x.flags.writeable = False
        with san.guard("kernel", {"x": x}):
            pass
        assert not x.flags.writeable

    def test_nan_creation_trapped(self):
        san = ArraySanitizer()
        finite = {"x": np.ones(3, dtype=np.float32)}
        with san.guard("kernel", finite) as rec:
            out = {"y": np.array([1.0, np.nan], dtype=np.float32)}
        with pytest.raises(SanitizerError, match="non-finite"):
            san.check_outputs(rec, out)

    def test_nonfinite_inputs_do_not_trap(self):
        # a degraded ensemble already carrying NaN must not re-raise
        san = ArraySanitizer()
        dirty = {"x": np.array([np.nan], dtype=np.float32)}
        with san.guard("kernel", dirty) as rec:
            out = {"y": np.array([np.inf], dtype=np.float32)}
        san.check_outputs(rec, out)  # no raise

    def test_integer_arrays_ignored_by_finiteness(self):
        san = ArraySanitizer()
        with san.guard("kernel", {"i": np.arange(3)}) as rec:
            pass
        san.check_outputs(rec, {"j": np.arange(3)})

    def test_entry_checks_via_guard(self):
        san = ArraySanitizer()
        bad = {"x": np.zeros(3, dtype=np.float64)}
        with pytest.raises(SanitizerError):
            with san.guard("k", bad, expect_dtype=np.float32):
                pass

    def test_call_counter(self):
        san = ArraySanitizer()
        for _ in range(3):
            with san.guard("letkf", {}):
                pass
        assert san.calls["letkf"] == 3

    def test_null_sanitizer_is_free(self):
        x = np.zeros(3, dtype=np.float64)
        NULL_SANITIZER.check_dtype("k", {"x": x}, np.float32)  # no raise
        with NULL_SANITIZER.guard("k", {"x": x}) as rec:
            assert rec is None
            x[0] = 1.0  # not frozen
        NULL_SANITIZER.check_outputs(rec, {"x": x})
        assert not NULL_SANITIZER.enabled

    def test_make_sanitizer(self):
        assert make_sanitizer(False) is NULL_SANITIZER
        assert isinstance(make_sanitizer(True), ArraySanitizer)
        assert make_sanitizer(True).enabled


class TestSanitizedBackend:
    def _state(self, dtype=np.float32):
        fields = {"theta": np.ones((2, 3), dtype=dtype)}
        return SimpleNamespace(
            fields=fields, aux={}, grid=SimpleNamespace(dtype=np.dtype(dtype))
        )

    def _wrap(self, inner):
        from repro.core.backends import SanitizedBackend

        return SanitizedBackend(inner)

    def test_make_backend_arms_from_config(self):
        from repro.config import ExecutionConfig
        from repro.core.backends import SanitizedBackend, make_backend

        b = make_backend(ExecutionConfig(backend="serial", sanitize=True))
        assert isinstance(b, SanitizedBackend)
        assert b.name == "serial"  # telemetry span names unchanged
        assert b.sanitizer.enabled
        # off by default, and never double-wrapped
        from repro.core.backends import VectorizedBackend

        assert isinstance(make_backend("vectorized"), VectorizedBackend)
        assert make_backend(b, sanitize=True) is b

    def test_clean_forecast_passes_through(self):
        state = self._state()
        out_state = self._state()
        inner = SimpleNamespace(
            name="stub", forecast=lambda model, s, d: out_state
        )
        wrapped = self._wrap(inner)
        assert wrapped.forecast(None, state, 30.0) is out_state
        assert wrapped.sanitizer.calls["forecast"] == 1

    def test_dtype_drift_trapped(self):
        state = self._state(dtype=np.float64)
        state.grid = SimpleNamespace(dtype=np.dtype(np.float32))
        inner = SimpleNamespace(name="stub", forecast=lambda m, s, d: s)
        with pytest.raises(SanitizerError, match="dtype"):
            self._wrap(inner).forecast(None, state, 30.0)

    def test_input_mutation_trapped(self):
        state = self._state()

        def evil(model, s, d):
            s.fields["theta"][0, 0] = 99.0
            return s

        inner = SimpleNamespace(name="stub", forecast=evil)
        with pytest.raises(SanitizerError, match="in-place write"):
            self._wrap(inner).forecast(None, state, 30.0)
        assert state.fields["theta"][0, 0] == 1.0

    def test_nan_creation_trapped(self):
        state = self._state()

        def broken(model, s, d):
            out = self._state()
            out.fields["theta"][0, 0] = np.nan
            return out

        inner = SimpleNamespace(name="stub", forecast=broken)
        with pytest.raises(SanitizerError, match="non-finite"):
            self._wrap(inner).forecast(None, state, 30.0)


# ---------------------------------------------------------------------------
# runtime concurrency sanitizer
# ---------------------------------------------------------------------------


class TestConcurrencySanitizer:
    def test_acquire_conflict_raises(self):
        san = ConcurrencySanitizer()
        san.acquire("slab", 0, 2, worker_owner(0))
        with pytest.raises(OwnershipError, match="may not claim"):
            san.acquire("slab", 1, 3, worker_owner(1))
        san.acquire("slab", 2, 4, worker_owner(1))  # disjoint range is fine
        assert san.owner_of("slab", 0) == worker_owner(0)
        assert san.owner_of("slab", 3) == worker_owner(1)
        assert san.owner_of("slab", 9) is None
        assert san.violations == 1

    def test_release_frees_the_range(self):
        san = ConcurrencySanitizer()
        san.acquire("slab", 0, 4, worker_owner(0))
        san.release("slab", 0, 4, worker_owner(0))
        san.release("slab", 0, 4, worker_owner(0))  # idempotent
        san.acquire("slab", 0, 4, worker_owner(1))  # no conflict left

    def test_handoff_traps_foreign_write(self):
        san = ConcurrencySanitizer()
        x = np.zeros(4, dtype=np.float64)
        with pytest.raises(OwnershipError, match="foreign write"):
            with san.handoff("slab", {"fields.U": x}, [(0, 4, worker_owner(0))]):
                x[0] = 1.0
        # flags restored, value untouched, lease dropped
        assert x.flags.writeable and x[0] == 0.0
        assert san.violations == 1
        assert san.owner_of("slab", 0) is None

    def test_handoff_restores_flags_on_success(self):
        san = ConcurrencySanitizer()
        x = np.zeros(4, dtype=np.float64)
        frozen = np.zeros(2)
        frozen.flags.writeable = False
        with san.handoff("slab", {"x": x, "ro": frozen}, [(0, 4, worker_owner(0))]):
            assert not x.flags.writeable
        assert x.flags.writeable
        assert not frozen.flags.writeable  # already-read-only stays that way
        assert san.handoffs == 1

    def test_reclaim_requires_ownership(self):
        san = ConcurrencySanitizer()
        x = np.zeros(4, dtype=np.float64)
        with san.handoff("slab", {"x": x}, [(0, 4, worker_owner(0))]) as hoff:
            with pytest.raises(OwnershipError, match="foreign write"):
                with hoff.reclaim(0, 4, parent_owner()):
                    pass

    def test_reclaim_steal_transfers_lease_and_thaws(self):
        san = ConcurrencySanitizer()
        x = np.zeros(4, dtype=np.float64)
        with san.handoff("slab", {"x": x}, [(0, 4, worker_owner(0))]) as hoff:
            with hoff.reclaim(0, 4, parent_owner(), steal=True):
                x[:] = 7.0  # the audited crash-recovery write
            assert san.owner_of("slab", 1) == parent_owner()
            assert not x.flags.writeable  # refrozen after the reclaim
        assert x.flags.writeable and (x == 7.0).all()
        assert san.violations == 0

    def test_null_object_and_factory(self):
        assert make_concurrency_sanitizer(False) is NULL_CONCURRENCY
        assert not NULL_CONCURRENCY.enabled
        san = make_concurrency_sanitizer(True)
        assert isinstance(san, ConcurrencySanitizer) and san.enabled
        x = np.zeros(2, dtype=np.float64)
        with NULL_CONCURRENCY.handoff(
            "slab", {"x": x}, [(0, 2, worker_owner(0))]
        ) as hoff:
            x[0] = 1.0  # never frozen
            with hoff.reclaim(0, 2, parent_owner()):
                pass
        assert NULL_CONCURRENCY.owner_of("slab", 0) is None


class TestLoopStallProbe:
    def test_detects_a_blocked_loop(self):
        from repro.telemetry import Telemetry

        tel = Telemetry()
        probe = LoopStallProbe(threshold_s=0.05, interval_s=0.01, telemetry=tel)

        async def scenario():
            probe.start()
            probe.start()  # idempotent: one heartbeat task
            await asyncio.sleep(0.03)
            time.sleep(0.25)  # a blocking callback holds the loop
            await asyncio.sleep(0.03)
            await probe.stop()

        asyncio.run(scenario())
        assert probe.stalls >= 1
        assert probe.worst_lag_s >= 0.05
        assert probe._hist.count == probe.stalls
        assert probe._counter.value == probe.stalls

    def test_cooperative_loop_is_clean(self):
        probe = LoopStallProbe(threshold_s=0.25, interval_s=0.01)

        async def scenario():
            probe.start()
            for _ in range(5):
                await asyncio.sleep(0.01)
            await probe.stop()
            await probe.stop()  # safe to call twice

        asyncio.run(scenario())
        assert probe.stalls == 0 and probe.worst_lag_s == 0.0


class TestSegmentLeakAccounting:
    def test_monitor_and_sweep_report_leaks(self):
        import repro.model.shm as shm

        from repro.telemetry import Telemetry

        tel = Telemetry()
        monitor = SegmentLeakMonitor(telemetry=tel)
        slab = shm.SharedStateSlab({"U": ((2, 3), "float32")}, {})
        name = slab.name  # deliberately leaked: no close()
        leaked = monitor.check()
        assert name in leaked
        assert tel.metrics.counter("checks_shm_leaked_total").value >= 1

        seen = []

        def listener(names):
            seen.extend(names)

        shm.add_sweep_listener(listener)
        try:
            with pytest.warns(ResourceWarning, match="leaked"):
                swept = shm.sweep_leaked()
        finally:
            shm._SWEEP_LISTENERS.remove(listener)
        assert name in swept and name in seen
        # the sweep reclaimed it: nothing new is live any more
        monitor_after = SegmentLeakMonitor()
        assert name not in monitor_after.snapshot()
        assert monitor.check() == set()

    def test_clean_scope_has_no_leaks(self):
        import repro.model.shm as shm

        monitor = SegmentLeakMonitor()
        with shm.SharedStateSlab({"U": ((2, 2), "float64")}, {}) as slab:
            slab.fields["U"][:] = 1.0
        assert monitor.check() == set()

    def test_attach_sweep_telemetry_counts(self):
        import repro.model.shm as shm

        from repro.checks.concurrency import attach_sweep_telemetry
        from repro.telemetry import Telemetry

        tel = Telemetry()
        attach_sweep_telemetry(tel)
        try:
            slab = shm.SharedStateSlab({"U": ((2, 2), "float32")}, {})
            with pytest.warns(ResourceWarning):
                shm.sweep_leaked()  # slab still referenced: a true leak
        finally:
            shm._SWEEP_LISTENERS.pop()
        assert tel.metrics.counter("checks_shm_leaked_total").value == 1
        slab.close()  # already swept; idempotent


# ---------------------------------------------------------------------------
# integration: sanitized cycling is bit-identical
# ---------------------------------------------------------------------------


def _mini_system(sanitize):
    from repro.config import ExecutionConfig, LETKFConfig, RadarConfig, ScaleConfig
    from repro.core import BDASystem
    from repro.model.initial import convective_sounding

    scfg = ScaleConfig().reduced(nx=8, nz=8, members=3)
    lcfg = LETKFConfig(
        ensemble_size=3,
        analysis_zmin=0.0,
        analysis_zmax=20000.0,
        localization_h=12000.0,
        localization_v=4000.0,
        gross_error_refl_dbz=100.0,
        gross_error_doppler_ms=100.0,
    )
    bda = BDASystem(
        scfg, lcfg, RadarConfig().reduced(),
        sounding=convective_sounding(cape_factor=1.1), seed=11,
        backend=ExecutionConfig(backend="vectorized", sanitize=sanitize),
    )
    bda.trigger_convection(n=1, amplitude=5.0)
    bda.spinup_nature(300.0)
    bda.cycle()
    return bda


class TestSanitizedCycleBitIdentity:
    def test_sanitize_on_equals_off(self):
        plain = _mini_system(sanitize=False)
        guarded = _mini_system(sanitize=True)
        for name, arr in plain.ensemble.state.fields.items():
            other = guarded.ensemble.state.fields[name]
            assert arr.dtype == other.dtype
            assert np.array_equal(arr, other, equal_nan=True), name
        # the guarded run actually went through the sanitizer
        calls = guarded.backend.sanitizer.calls
        assert calls["forecast"] >= 1 and calls["letkf"] >= 1
        # and the cycler shares the backend's sanitizer instance
        assert guarded.cycler.sanitizer is guarded.backend.sanitizer


# ---------------------------------------------------------------------------
# integration: concurrency-checked processes runs are bit-identical
# ---------------------------------------------------------------------------


class TestConcurrencyCheckedBackend:
    def test_processes_forecast_bit_identical_with_checks(self):
        from repro.config import ExecutionConfig
        from repro.core.backends import make_backend
        from repro.model.model import ScaleRM

        from .test_backends import tiny_ensemble

        cfg, _, ens = tiny_ensemble(members=4)
        spec_off = ExecutionConfig(backend="processes", workers=2)
        spec_on = ExecutionConfig(
            backend="processes", workers=2, concurrency_checks=True
        )
        with make_backend(spec_off) as off, make_backend(spec_on) as on:
            assert off.concurrency is NULL_CONCURRENCY
            assert isinstance(on.concurrency, ConcurrencySanitizer)
            # two windows: the second exercises the reserved-slab path
            a = off.forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
            a = off.forecast(ScaleRM(cfg), a, 30.0)
            b = on.forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
            b = on.forecast(ScaleRM(cfg), b, 30.0)
            assert set(a.fields) == set(b.fields)
            for k in a.fields:
                assert np.array_equal(a.fields[k], b.fields[k]), k
            for k in a.aux:
                assert np.array_equal(a.aux[k], b.aux[k]), k
            assert on.concurrency.handoffs >= 2
            assert on.concurrency.violations == 0
            # all leases were returned at the end of each window
            assert all(not v for v in on.concurrency._ledger.values())

    def test_crash_recovery_survives_the_checks(self):
        from repro.core.backends import ProcessesBackend, VectorizedBackend
        from repro.model.model import ScaleRM

        from .test_backends import tiny_ensemble

        cfg, _, ens = tiny_ensemble(members=4)
        vec = VectorizedBackend().forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
        san = ConcurrencySanitizer()
        with ProcessesBackend(2, concurrency=san) as pool:
            pool.forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
            pool._task_qs[0].put({"op": "exit"})  # hard-kill worker 0
            out = pool.forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
        for k in vec.fields:
            np.testing.assert_array_equal(out.fields[k], vec.fields[k])
        # the recompute went through the audited reclaim, not a violation
        assert san.violations == 0

    def test_foreign_write_into_worker_block_raises(self):
        from repro.model.shm import SharedStateSlab, state_spec

        from .test_backends import tiny_ensemble

        _, _, ens = tiny_ensemble(members=3)
        fspec, aspec = state_spec(ens.state)
        san = ConcurrencySanitizer()
        with SharedStateSlab(fspec, aspec) as slab:
            leases = [(0, 2, worker_owner(0)), (2, 3, worker_owner(1))]
            first = next(iter(slab.fields.values()))
            with pytest.raises(OwnershipError, match="foreign write"):
                with san.handoff(slab.name, slab.fields, leases):
                    first[0] = 1.0  # the parent racing its own workers
            assert first.flags.writeable  # restored for the real owner
        assert san.violations == 1
