"""Deterministic reproducibility: same seed, same results.

An operational system's experiments must rerun bit-identically; every
stochastic component here is seeded, so two identically-configured runs
must agree exactly.
"""

import numpy as np

from repro.config import LETKFConfig, RadarConfig, ScaleConfig
from repro.core import BDASystem
from repro.model.initial import convective_sounding
from repro.workflow import OperationsSimulator, OLYMPICS


def build(seed):
    scfg = ScaleConfig().reduced(nx=12, nz=10, members=4)
    lcfg = LETKFConfig(
        ensemble_size=4, analysis_zmin=0.0, analysis_zmax=20000.0,
        localization_h=15000.0, localization_v=5000.0,
        gross_error_refl_dbz=100.0, gross_error_doppler_ms=100.0,
        eigensolver="lapack",
    )
    bda = BDASystem(scfg, lcfg, RadarConfig().reduced(n_elevations=6, n_azimuths=24, n_gates=40),
                    sounding=convective_sounding(), seed=seed)
    bda.trigger_convection(n=2, amplitude=4.0)
    bda.spinup_nature(600.0)
    return bda


class TestBDAReproducibility:
    def test_same_seed_same_cycling(self):
        a = build(seed=17)
        b = build(seed=17)
        for _ in range(2):
            ra = a.cycle()
            rb = b.cycle()
        for sa, sb in zip(a.ensemble.members, b.ensemble.members):
            for name in sa.fields:
                assert np.array_equal(sa.fields[name], sb.fields[name]), name
        assert np.array_equal(a.nature_dbz(), b.nature_dbz())

    def test_different_seed_differs(self):
        a = build(seed=17)
        b = build(seed=18)
        assert not np.array_equal(
            a.ensemble.members[0].fields["qv"], b.ensemble.members[0].fields["qv"]
        )


class TestOperationsReproducibility:
    def test_campaign_deterministic(self):
        r1 = OperationsSimulator(seed=99).run_period(OLYMPICS)
        r2 = OperationsSimulator(seed=99).run_period(OLYMPICS)
        t1, t2 = r1.tts_series, r2.tts_series
        both = np.isfinite(t1) & np.isfinite(t2)
        assert np.array_equal(np.isfinite(t1), np.isfinite(t2))
        assert np.allclose(t1[both], t2[both])
