import numpy as np

from repro.config import LETKFConfig, ScaleConfig
from repro.report import histogram_text, table1, table2_text, table3_text


class TestTable1:
    def test_bda_last_row_dominates(self):
        rows, text = table1()
        assert rows[-1].system.name == "BDA2021"
        assert rows[-1].ratio_to_best_operational >= 100.0
        assert "BDA2021" in text

    def test_all_systems_present(self):
        rows, text = table1()
        assert len(rows) == 7
        for name in ("LFM", "HRRR v4", "UKV", "ICON-D2"):
            assert name in text


class TestTable2Text:
    def test_paper_values_rendered(self):
        txt = table2_text(LETKFConfig())
        assert "1000" in txt
        assert "0.5 - 11 km" in txt
        assert "Reflectivity: 5 dBZ" in txt
        assert "factor=0.95" in txt
        assert "horizontal: 2 km" in txt


class TestTable3Text:
    def test_paper_values_rendered(self):
        txt = table3_text(ScaleConfig())
        assert "128 km x 128 km" in txt
        assert "500 m" in txt
        assert "0.4 s" in txt
        assert "HEVI" in txt
        assert "tomita08-sm6" in txt
        assert "mynn2.5" in txt


class TestHistogramText:
    def test_renders_bars(self):
        edges = np.array([0.0, 60.0, 120.0, 180.0])
        counts = np.array([1, 10, 5])
        txt = histogram_text(edges, counts)
        assert txt.count("\n") == 2
        assert "#" in txt
