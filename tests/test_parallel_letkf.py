"""The distributed LETKF vs the serial solver (must agree)."""

import numpy as np
import pytest
from scipy.ndimage import gaussian_filter

from repro.comm.parallel_letkf import DistributedLETKF
from repro.config import LETKFConfig, reduced_inner_domain
from repro.grid import Grid
from repro.letkf import LETKFSolver
from repro.letkf.qc import GriddedObservations


@pytest.fixture(scope="module")
def case():
    grid = Grid(reduced_inner_domain(nx=12, nz=8))
    cfg = LETKFConfig(
        ensemble_size=10,
        localization_h=9000.0,
        localization_v=3000.0,
        analysis_zmin=0.0,
        analysis_zmax=20000.0,
        eigensolver="lapack",
    )
    rng = np.random.default_rng(3)

    def smooth(std):
        f = gaussian_filter(rng.normal(size=grid.shape), sigma=(1, 2, 2))
        return (f / f.std() * std).astype(np.float32)

    truth = smooth(8.0) + 20
    ens_x = np.stack([truth + smooth(6.0) + 2 for _ in range(10)])
    ens_q = np.abs(ens_x) * 1e-4
    obs = GriddedObservations(
        kind="reflectivity",
        values=truth + rng.normal(size=grid.shape).astype(np.float32),
        valid=np.ones(grid.shape, bool),
        error_std=1.0,
    )
    hxb = {"reflectivity": ens_x.copy()}
    return grid, cfg, truth, {"x": ens_x, "qv": ens_q}, [obs], hxb


class TestDistributedMatchesSerial:
    @pytest.mark.parametrize("n_ranks", [1, 3, 8])
    def test_parallel_transport(self, case, n_ranks):
        grid, cfg, truth, ens, obs, hxb = case
        serial, _ = LETKFSolver(grid, cfg).analyze(
            {k: v.copy() for k, v in ens.items()}, [o.copy() for o in obs], hxb
        )
        dist = DistributedLETKF(grid, cfg, n_ranks=n_ranks)
        parallel, report = dist.analyze(
            {k: v.copy() for k, v in ens.items()}, [o.copy() for o in obs], hxb
        )
        for v in ens:
            assert np.allclose(serial[v], parallel[v], atol=5e-3), v
        assert report.n_ranks == n_ranks
        assert sum(report.points_per_rank) == grid.ny * grid.nx

    def test_file_transport(self, case, tmp_path):
        grid, cfg, truth, ens, obs, hxb = case
        dist_p = DistributedLETKF(grid, cfg, n_ranks=4)
        dist_f = DistributedLETKF(grid, cfg, n_ranks=4, transport="file", workdir=str(tmp_path))
        a_p, rep_p = dist_p.analyze(
            {k: v.copy() for k, v in ens.items()}, [o.copy() for o in obs], hxb
        )
        a_f, rep_f = dist_f.analyze(
            {k: v.copy() for k, v in ens.items()}, [o.copy() for o in obs], hxb
        )
        for v in ens:
            assert np.allclose(a_p[v], a_f[v], atol=1e-6)
        # the paper's claim end-to-end: the file path costs more
        assert rep_p.simulated_comm_seconds < rep_f.simulated_comm_seconds

    def test_unknown_transport(self, case):
        grid, cfg, *_ = case
        with pytest.raises(ValueError):
            DistributedLETKF(grid, cfg, transport="carrier-pigeon")

    def test_moisture_clipped(self, case):
        grid, cfg, truth, ens, obs, hxb = case
        dist = DistributedLETKF(grid, cfg, n_ranks=4)
        ana, _ = dist.analyze(
            {k: v.copy() for k, v in ens.items()}, [o.copy() for o in obs], hxb
        )
        assert np.all(ana["qv"] >= 0.0)

    def test_error_reduction_preserved(self, case):
        grid, cfg, truth, ens, obs, hxb = case
        dist = DistributedLETKF(grid, cfg, n_ranks=4)
        ana, _ = dist.analyze(
            {k: v.copy() for k, v in ens.items()}, [o.copy() for o in obs], hxb
        )
        prior = np.sqrt(np.mean((ens["x"].mean(0) - truth) ** 2))
        post = np.sqrt(np.mean((ana["x"].mean(0) - truth) ** 2))
        assert post < 0.6 * prior

    def test_comm_bytes_scale_with_ensemble(self, case):
        grid, cfg, truth, ens, obs, hxb = case
        dist = DistributedLETKF(grid, cfg, n_ranks=4)
        _, report = dist.analyze(
            {k: v.copy() for k, v in ens.items()}, [o.copy() for o in obs], hxb
        )
        # forward + backward, each moving the (m, nv, grid) state minus
        # the blocks that stay on their own rank
        full = 2 * ens["x"].size * len(ens) * 4
        assert 0.5 * full < report.total_bytes <= full