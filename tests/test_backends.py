"""Batched ensemble state + execution backend equivalence tests.

The contract under test: the member-batched :class:`EnsembleState` and
the vectorized/sharded execution backends are *bit-identical* to the
per-member serial loop (every model kernel is member-independent), and
the checkpoint layout built on the batch round-trips exactly.
"""

import numpy as np
import pytest

from repro.config import ExecutionConfig, LETKFConfig, RadarConfig, ScaleConfig
from repro.core import BDASystem
from repro.core.backends import (
    SerialBackend,
    ShardedBackend,
    VectorizedBackend,
    make_backend,
)
from repro.core.ensemble import Ensemble
from repro.model.ensemble_state import EnsembleState
from repro.model.initial import convective_sounding
from repro.model.model import ScaleRM
from repro.model.state import ModelState, PROGNOSTIC_VARS


def tiny_config(members=4, nx=8, nz=6):
    return ScaleConfig().reduced(nx=nx, nz=nz, members=members)


def tiny_ensemble(members=4, seed=3):
    cfg = tiny_config(members)
    model = ScaleRM(cfg)
    rng = np.random.default_rng(seed)
    ens = Ensemble.from_model(model, members, rng)
    return cfg, model, ens


def build_bda(backend, *, members=5, seed=9):
    scfg = ScaleConfig().reduced(nx=12, nz=8, members=members)
    lcfg = LETKFConfig(
        ensemble_size=members,
        analysis_zmin=0.0,
        analysis_zmax=20000.0,
        localization_h=12000.0,
        localization_v=4000.0,
        gross_error_refl_dbz=100.0,
        gross_error_doppler_ms=100.0,
        eigensolver="lapack",
    )
    bda = BDASystem(
        scfg, lcfg, RadarConfig().reduced(),
        sounding=convective_sounding(cape_factor=1.1),
        seed=seed, backend=backend,
    )
    bda.trigger_convection(n=2, amplitude=5.0)
    bda.spinup_nature(120.0)
    return bda


# ---------------------------------------------------------------------------
# EnsembleState container semantics
# ---------------------------------------------------------------------------


class TestEnsembleState:
    def test_from_members_stacks_member_axis(self):
        _, _, ens = tiny_ensemble(members=3)
        st = ens.state
        assert isinstance(st, EnsembleState)
        assert st.n_members == 3
        g = st.grid
        assert st.fields["dens_p"].shape == (3, g.nz, g.ny, g.nx)
        assert st.fields["momz"].shape == (3, g.nz + 1, g.ny, g.nx)

    def test_member_view_is_zero_copy(self):
        _, _, ens = tiny_ensemble(members=3)
        view = ens.state.member_view(1)
        assert view.fields["qv"].base is ens.state.fields["qv"]
        view.fields["qv"][...] = 0.25
        assert np.all(ens.state.fields["qv"][1] == 0.25)
        assert not np.any(ens.state.fields["qv"][0] == 0.25)

    def test_members_proxy_get_and_removed_set(self):
        _, _, ens = tiny_ensemble(members=3)
        replacement = ens.members[0].copy()
        replacement.fields["qv"][...] = 0.125
        # item assignment was deprecated in PR 3 and is a hard error now
        with pytest.raises(TypeError, match="set_member"):
            ens.members[2] = replacement
        ens.state.set_member(2, replacement)
        assert np.all(ens.state.fields["qv"][2] == 0.125)
        assert len(ens.members[:2]) == 2
        assert len(list(ens.members)) == 3

    def test_analysis_arrays_match_per_member_stack(self):
        _, _, ens = tiny_ensemble(members=4)
        batched = ens.state.analysis_arrays()
        per_member = [ens.members[i].to_analysis() for i in range(4)]
        for v in ModelState.ANALYSIS_VARS:
            stacked = np.stack([pm[v] for pm in per_member], axis=0)
            np.testing.assert_array_equal(batched[v], stacked)

    def test_analysis_arrays_subset(self):
        _, _, ens = tiny_ensemble(members=4)
        sub = ens.state.analysis_arrays([1, 3])
        full = ens.state.analysis_arrays()
        for v in ModelState.ANALYSIS_VARS:
            np.testing.assert_array_equal(sub[v], full[v][[1, 3]])

    def test_mean_state_matches_sequential_float64_loop(self):
        _, _, ens = tiny_ensemble(members=4)
        mean = ens.mean_state()
        for name in PROGNOSTIC_VARS:
            acc = np.zeros(ens.state.fields[name].shape[1:], dtype=np.float64)
            for i in range(len(ens)):
                acc += ens.state.fields[name][i]
            expect = (acc / len(ens)).astype(ens.grid.dtype)
            if name in ("qv",):
                expect = np.clip(expect, 0.0, None)
            np.testing.assert_array_equal(mean.fields[name], expect)

    def test_finite_mask_flags_poisoned_member(self):
        _, _, ens = tiny_ensemble(members=4)
        ens.members[2].fields["rhot_p"][...] = np.nan
        mask = ens.state.finite_mask()
        assert mask.tolist() == [True, True, False, True]

    def test_iteration_yields_views_in_member_order(self):
        _, _, ens = tiny_ensemble(members=3)
        for i, st in enumerate(ens):
            assert st.fields["dens_p"].base is ens.state.fields["dens_p"]
            np.testing.assert_array_equal(
                st.fields["dens_p"], ens.state.fields["dens_p"][i]
            )


# ---------------------------------------------------------------------------
# Execution backend equivalence
# ---------------------------------------------------------------------------


class TestBackendEquivalence:
    def test_make_backend_resolution(self):
        assert isinstance(make_backend(None), VectorizedBackend)
        assert isinstance(make_backend("serial"), SerialBackend)
        sb = make_backend(ExecutionConfig(backend="sharded", n_shards=3))
        assert isinstance(sb, ShardedBackend) and sb.n_shards == 3
        be = SerialBackend()
        assert make_backend(be) is be
        with pytest.raises(ValueError):
            ExecutionConfig(backend="gpu")

    def test_serial_vectorized_bit_identical_one_window(self):
        cfg, _, ens = tiny_ensemble(members=4)
        ser = SerialBackend().forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
        vec = VectorizedBackend().forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
        for v in ser.fields:
            np.testing.assert_array_equal(ser.fields[v], vec.fields[v])
        assert ser.time == vec.time and ser.nsteps == vec.nsteps

    def test_sharded_matches_within_tolerance(self):
        cfg, _, ens = tiny_ensemble(members=5)
        vec = VectorizedBackend().forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
        shd = ShardedBackend(n_shards=2).forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
        assert shd.n_members == 5
        for v in vec.fields:
            np.testing.assert_allclose(
                shd.fields[v], vec.fields[v], rtol=1e-6, atol=1e-7
            )

    def test_sharded_records_traffic(self):
        cfg, _, ens = tiny_ensemble(members=4)
        backend = ShardedBackend(n_shards=2)
        backend.forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
        assert backend.last_stats is not None
        assert backend.last_stats.bytes_moved > 0

    @pytest.mark.slow
    def test_seeded_multicycle_bda_bit_identical(self):
        """Whole-pipeline equivalence: forecasts + LETKF + spread injection."""
        runs = {}
        for name in ("serial", "vectorized"):
            bda = build_bda(name)
            for _ in range(2):
                bda.cycle()
            runs[name] = bda
        a, b = runs["serial"], runs["vectorized"]
        for v in a.ensemble.state.fields:
            np.testing.assert_array_equal(
                a.ensemble.state.fields[v], b.ensemble.state.fields[v]
            )
        assert a.analysis_rmse("theta_p") == b.analysis_rmse("theta_p")

    def test_per_state_physics_cadence_is_member_independent(self):
        """Regression: the physics cadence counter lives on the state.

        Interleaving two trajectories through one shared model instance
        must produce the same result as running each on its own model —
        the old shared ``ScaleRM.nsteps`` counter broke this.
        """
        cfg = tiny_config()
        shared = ScaleRM(cfg)
        rng = np.random.default_rng(5)
        ens = Ensemble.from_model(shared, 2, rng)
        a0 = ens.members[0].copy()
        b0 = ens.members[1].copy()

        # interleaved through the shared instance, step by step
        a, b = a0.copy(), b0.copy()
        for _ in range(4):
            a = shared.step(a)
            b = shared.step(b)

        # each on a pristine model instance
        ref_a = ScaleRM(cfg).integrate(a0.copy(), 4 * cfg.dt)
        ref_b = ScaleRM(cfg).integrate(b0.copy(), 4 * cfg.dt)
        for v in a.fields:
            np.testing.assert_array_equal(a.fields[v], ref_a.fields[v])
            np.testing.assert_array_equal(b.fields[v], ref_b.fields[v])


# ---------------------------------------------------------------------------
# Checkpoint/resume on the batched layout
# ---------------------------------------------------------------------------


class TestBatchedCheckpoint:
    def test_state_dict_roundtrip(self):
        bda = build_bda("vectorized", seed=17)
        bda.cycle()
        meta, arrays = bda.cycler.state_dict()
        assert meta["kind"] == "da-cycler"
        assert "member_nsteps" in meta
        m = len(bda.ensemble)
        for v in bda.ensemble.state.fields:
            assert arrays[f"member_{v}"].shape[0] == m
        # aux closure state (TKE, rain rate) rides along per member
        assert any(k.startswith("member_aux_") for k in arrays)

        other = build_bda("vectorized", seed=17)
        other.cycle()
        # scramble, then restore from the checkpoint dict
        other.ensemble.state.fields["qv"][...] = 0.0
        other.ensemble.state.aux.clear()
        other.cycler.load_state_dict(meta, arrays)
        for v in bda.ensemble.state.fields:
            np.testing.assert_array_equal(
                other.ensemble.state.fields[v], bda.ensemble.state.fields[v]
            )
        for k in bda.ensemble.state.aux:
            np.testing.assert_array_equal(
                other.ensemble.state.aux[k], bda.ensemble.state.aux[k]
            )
        assert other.ensemble.state.nsteps == bda.ensemble.state.nsteps
        assert other.ensemble.state.time == bda.ensemble.state.time

    def test_resume_continues_bit_identically(self, tmp_path):
        path = tmp_path / "ck.npz"
        ref = build_bda("vectorized", seed=23)
        ref.cycle()
        ref.cycler.save(path)
        ref_more = [ref.cycler.run_cycle(None) for _ in range(2)]

        twin = build_bda("vectorized", seed=23)
        twin.cycle()
        # perturb the twin so a no-op load would be caught
        twin.ensemble.state.fields["qv"][...] *= 1.001
        twin.cycler.load(path)
        twin_more = [twin.cycler.run_cycle(None) for _ in range(2)]

        for v in ref.ensemble.state.fields:
            np.testing.assert_array_equal(
                ref.ensemble.state.fields[v], twin.ensemble.state.fields[v]
            )
        for ra, rb in zip(ref_more, twin_more):
            assert ra.mode == rb.mode
            assert ra.spread_theta == rb.spread_theta
