"""Ensemble, nesting, timeline, products."""

import json
import os

import numpy as np
import pytest

from repro.config import ScaleConfig
from repro.core import Ensemble, NestedDomains, ProductWriter, TimeToSolution
from repro.model import convective_sounding


@pytest.fixture()
def ensemble(model, rng):
    return Ensemble.from_model(model, 6, rng)


class TestEnsemble:
    def test_members_distinct(self, ensemble):
        a = ensemble.members[0].fields["qv"]
        b = ensemble.members[1].fields["qv"]
        assert not np.allclose(a, b)

    def test_spread_positive(self, ensemble):
        assert ensemble.spread("theta_p") > 0
        assert ensemble.spread("u") > 0

    def test_mean_state_is_average(self, ensemble):
        mean = ensemble.mean_state()
        manual = np.mean([m.fields["momx"] for m in ensemble.members], axis=0)
        assert np.allclose(mean.fields["momx"], manual, atol=1e-4)

    def test_analysis_array_roundtrip(self, ensemble):
        arrays = ensemble.analysis_arrays()
        assert arrays["u"].shape[0] == 6
        before = [m.fields["qv"].copy() for m in ensemble.members]
        ensemble.load_analysis_arrays(arrays)
        for m, b in zip(ensemble.members, before):
            assert np.allclose(m.fields["qv"], b, atol=1e-5)

    def test_forecast_member_selection(self, ensemble, rng):
        picks = ensemble.select_forecast_members(4, rng)
        # the paper: mean + randomly chosen members
        assert len(picks) == 4
        mean = ensemble.mean_state()
        assert np.allclose(picks[0].fields["momx"], mean.fields["momx"], atol=1e-4)

    def test_forecast_selection_bounds(self, ensemble, rng):
        with pytest.raises(ValueError):
            ensemble.select_forecast_members(0, rng)
        picks = ensemble.select_forecast_members(100, rng)
        assert len(picks) <= len(ensemble) + 1

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            Ensemble([])


class TestNesting:
    def test_refresh_schedule(self, model, ensemble):
        outer_cfg = ScaleConfig().reduced(nx=8, nz=12)
        nest = NestedDomains(model, outer_cfg, convective_sounding(), refresh_seconds=3 * 3600.0)
        assert nest.needs_refresh(0.0)
        assert nest.tick(0.0, ensemble)
        assert not nest.tick(600.0, ensemble)
        assert nest.tick(3 * 3600.0 + 1, ensemble)
        assert nest.refresh_count == 2

    def test_boundary_installed(self, model, ensemble):
        outer_cfg = ScaleConfig().reduced(nx=8, nz=12)
        nest = NestedDomains(model, outer_cfg, convective_sounding())
        nest.tick(0.0, ensemble)
        assert model.boundary.fields is not None
        assert model.boundary.fields["qv"].shape == model.grid.shape

    def test_apply_before_refresh_raises(self, model, ensemble):
        outer_cfg = ScaleConfig().reduced(nx=8, nz=12)
        nest = NestedDomains(model, outer_cfg, convective_sounding())
        with pytest.raises(RuntimeError):
            nest.apply_to_inner(ensemble)

    def test_outer_domain_coarser(self, model, ensemble):
        outer_cfg = ScaleConfig().reduced(nx=8, nz=12)
        nest = NestedDomains(model, outer_cfg, convective_sounding())
        nest.refresh(0.0)
        assert nest.outer_model.grid.dx > model.grid.dx


class TestBoundaryRelaxation:
    def test_relaxation_pulls_toward_target(self, model):
        from repro.model.boundary import LateralBoundary, boundary_from_reference

        st = model.initial_state()
        fields = boundary_from_reference(model.grid, model.reference)
        fields["qv"] = fields["qv"] + 0.001
        lb = LateralBoundary(model.grid, width=3, tau=30.0)
        lb.set_fields(fields)
        qv_edge_before = float(st.fields["qv"][0, 0, 0])
        lb.apply(st, dt=30.0)
        qv_edge_after = float(st.fields["qv"][0, 0, 0])
        assert qv_edge_after > qv_edge_before

    def test_interior_untouched(self, model):
        from repro.model.boundary import LateralBoundary, boundary_from_reference

        st = model.initial_state()
        fields = boundary_from_reference(model.grid, model.reference)
        fields["qv"] = fields["qv"] + 0.001
        lb = LateralBoundary(model.grid, width=3, tau=30.0)
        lb.set_fields(fields)
        mid = model.grid.nx // 2
        qv_mid = float(st.fields["qv"][0, mid, mid])
        lb.apply(st, dt=30.0)
        assert float(st.fields["qv"][0, mid, mid]) == pytest.approx(qv_mid)

    def test_no_fields_is_noop(self, model):
        from repro.model.boundary import LateralBoundary

        st = model.initial_state()
        before = st.fields["qv"].copy()
        LateralBoundary(model.grid).apply(st, dt=30.0)
        assert np.array_equal(st.fields["qv"], before)


class TestTimeToSolution:
    def test_breakdown_and_total(self):
        tts = TimeToSolution(t_obs=100.0)
        tts.stamp("file_creation", 108.0)
        tts.stamp("jitdt_transfer", 111.0)
        tts.stamp("letkf", 126.0)
        tts.stamp("forecast_30min", 246.0)
        b = tts.breakdown()
        assert b["file_creation"] == pytest.approx(8.0)
        assert b["jitdt_transfer"] == pytest.approx(3.0)
        assert b["letkf"] == pytest.approx(15.0)
        assert b["forecast_30min"] == pytest.approx(120.0)
        assert tts.total == pytest.approx(146.0)
        assert tts.meets_deadline(180.0)

    def test_monotone_stamps_enforced(self):
        tts = TimeToSolution(t_obs=0.0)
        tts.stamp("file_creation", 10.0)
        with pytest.raises(ValueError):
            tts.stamp("jitdt_transfer", 5.0)

    def test_unknown_stage_rejected(self):
        tts = TimeToSolution(t_obs=0.0)
        with pytest.raises(ValueError):
            tts.stamp("coffee", 1.0)

    def test_paper_measurement_mechanism(self):
        # Sec. 2: (product file time stamp) - (radar data time stamp)
        tts = TimeToSolution.from_file_timestamps(1000.0, 1150.0)
        assert tts.total == pytest.approx(150.0)

    def test_report_format(self):
        tts = TimeToSolution(t_obs=0.0)
        tts.stamp("file_creation", 8.0)
        assert "time-to-solution" in tts.report()

    def test_empty_stamps(self):
        with pytest.raises(ValueError):
            TimeToSolution(t_obs=0.0).t_fcst


class TestProducts:
    def test_write_all_products(self, developed_nature, tmp_path):
        pw = ProductWriter(tmp_path)
        paths = pw.write(developed_nature, cycle=3)
        assert set(paths) == {"mapview", "rainrate", "birdseye", "metadata"}
        for p in paths.values():
            assert os.path.exists(p)

    def test_metadata_contents(self, developed_nature, tmp_path):
        pw = ProductWriter(tmp_path)
        paths = pw.write(developed_nature, cycle=1, with_3d=False)
        meta = json.loads(open(paths["metadata"]).read())
        assert meta["cycle"] == 1
        assert meta["max_dbz"] > 0  # the developed storm shows up

    def test_product_mtime_is_t_fcst(self, developed_nature, tmp_path):
        pw = ProductWriter(tmp_path)
        pw.write(developed_nature, cycle=2, with_3d=False)
        mtime = pw.product_mtime(2)
        tts = TimeToSolution.from_file_timestamps(mtime - 150.0, mtime)
        assert tts.total == pytest.approx(150.0)

    def test_png_files_valid(self, developed_nature, tmp_path):
        pw = ProductWriter(tmp_path)
        paths = pw.write(developed_nature, cycle=0, with_3d=False)
        with open(paths["mapview"], "rb") as f:
            assert f.read(8) == b"\x89PNG\r\n\x1a\n"
