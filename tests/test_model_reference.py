import numpy as np
import pytest

from repro.config import reduced_inner_domain
from repro.grid import Grid
from repro.model.reference import ReferenceState, Sounding


class TestSounding:
    def test_theta_increases_with_height(self):
        snd = Sounding()
        z = np.linspace(0, 16000, 100)
        th = snd.theta(z)
        assert np.all(np.diff(th) >= 0)

    def test_stratosphere_stabler_than_troposphere(self):
        snd = Sounding()
        grad_trop = (snd.theta(8000.0) - snd.theta(7000.0)) / 1000.0
        grad_strat = (snd.theta(14000.0) - snd.theta(13000.0)) / 1000.0
        assert grad_strat > grad_trop

    def test_rh_decays_upward(self):
        snd = Sounding()
        assert snd.relative_humidity(0.0) > snd.relative_humidity(5000.0)

    def test_wind_shear(self):
        snd = Sounding(u_sfc=2.0, u_shear=1e-3)
        u, v = snd.wind(np.array([0.0, 10000.0]))
        assert u[1] - u[0] == pytest.approx(10.0)

    def test_perturbed_changes_profile_but_stays_physical(self):
        snd = Sounding()
        rng = np.random.default_rng(0)
        p = snd.perturbed(rng)
        assert p.theta_sfc != snd.theta_sfc
        assert 0.3 <= p.rh_sfc <= 1.0


class TestReferenceState:
    @pytest.fixture(scope="class")
    def ref(self):
        return ReferenceState(Grid(reduced_inner_domain(nx=8, nz=40)))

    def test_hydrostatic_balance(self, ref):
        # dp/dz = -rho g to a fraction of a percent
        assert ref.check_hydrostatic() < 5e-3

    def test_surface_pressure(self, ref):
        assert ref.pres_f[0] == pytest.approx(1.0e5, rel=1e-10)

    def test_density_decreases_upward(self, ref):
        assert np.all(np.diff(ref.dens_c) < 0)

    def test_pressure_decreases_upward(self, ref):
        assert np.all(np.diff(ref.pres_c) < 0)

    def test_sound_speed_realistic(self, ref):
        cs = np.sqrt(ref.cs2_c)
        assert np.all(cs > 250.0)
        assert np.all(cs < 400.0)

    def test_dpdrt_positive(self, ref):
        assert np.all(ref.dpdrt_c > 0)
        assert np.all(ref.dpdrt_f > 0)

    def test_moisture_profile_bounded(self, ref):
        assert np.all(ref.qv_c >= 0)
        assert np.all(ref.qv_c < 0.04)

    def test_profiles_are_float64(self, ref):
        # hydrostatic accuracy requires double in the reference build
        assert ref.dens_c.dtype == np.float64
