import numpy as np
import pytest

from repro.config import reduced_inner_domain
from repro.grid import Grid
from repro.letkf.inflation import multiplicative, rtpp, rtpp_weights
from repro.letkf.qc import GriddedObservations, gross_error_check, superob_to_grid


class TestRTPP:
    def test_alpha_one_returns_prior(self):
        rng = np.random.default_rng(0)
        xb = rng.normal(size=(4, 10))
        xa = rng.normal(size=(4, 10))
        assert np.allclose(rtpp(xb, xa, 1.0), xb)

    def test_alpha_zero_returns_analysis(self):
        rng = np.random.default_rng(1)
        xb = rng.normal(size=(4, 10))
        xa = rng.normal(size=(4, 10))
        assert np.allclose(rtpp(xb, xa, 0.0), xa)

    def test_paper_factor_blend(self):
        xb = np.ones((1, 2))
        xa = np.zeros((1, 2))
        assert np.allclose(rtpp(xb, xa, 0.95), 0.95)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            rtpp(np.zeros(2), np.zeros(2), -0.1)

    def test_weights_form_matches_explicit_form(self):
        # applying RTPP to W must equal applying it to perturbations
        rng = np.random.default_rng(2)
        m = 8
        W = rng.normal(size=(3, m, m))
        Xb = rng.normal(size=(3, 5, m))
        Xb -= Xb.mean(axis=2, keepdims=True)
        alpha = 0.95
        Wr = rtpp_weights(W, alpha)
        xa_direct = np.einsum("gvm,gmn->gvn", Xb, Wr)
        xa_plain = np.einsum("gvm,gmn->gvn", Xb, W)
        xa_expect = alpha * Xb + (1 - alpha) * xa_plain
        assert np.allclose(xa_direct, xa_expect, atol=1e-12)

    def test_multiplicative(self):
        pert = np.ones((2, 3))
        assert np.allclose(multiplicative(pert, 1.1), 1.1)
        with pytest.raises(ValueError):
            multiplicative(pert, 0.0)


class TestGriddedObservations:
    def make(self, shape=(4, 6, 6)):
        return GriddedObservations(
            kind="reflectivity",
            values=np.full(shape, 20.0, dtype=np.float32),
            valid=np.ones(shape, bool),
            error_std=5.0,
        )

    def test_n_valid(self):
        obs = self.make()
        assert obs.n_valid == 4 * 6 * 6
        obs.valid[0] = False
        assert obs.n_valid == 3 * 6 * 6

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GriddedObservations("reflectivity", np.zeros((2, 2, 2)), np.ones((3, 2, 2), bool), 5.0)

    def test_nonpositive_error_rejected(self):
        with pytest.raises(ValueError):
            GriddedObservations("doppler", np.zeros((2, 2, 2)), np.ones((2, 2, 2), bool), 0.0)

    def test_copy_independent(self):
        obs = self.make()
        c = obs.copy()
        c.valid[...] = False
        assert obs.n_valid > 0


class TestGrossErrorCheck:
    def test_rejects_large_departures(self):
        obs = GriddedObservations(
            "reflectivity",
            np.full((2, 3, 3), 40.0, dtype=np.float32),
            np.ones((2, 3, 3), bool),
            5.0,
        )
        hxb_mean = np.full((2, 3, 3), 10.0)  # departure 30 > 10 dBZ
        out = gross_error_check(obs, hxb_mean, threshold=10.0)
        assert out.n_valid == 0
        assert out.n_rejected_gross == 18

    def test_keeps_small_departures(self):
        obs = GriddedObservations(
            "reflectivity",
            np.full((2, 3, 3), 12.0, dtype=np.float32),
            np.ones((2, 3, 3), bool),
            5.0,
        )
        out = gross_error_check(obs, np.full((2, 3, 3), 10.0), threshold=10.0)
        assert out.n_valid == 18
        assert out.n_rejected_gross == 0

    def test_paper_thresholds_partition(self):
        # departures straddling the 10 dBZ threshold
        vals = np.zeros((1, 1, 4), dtype=np.float32)
        vals[0, 0] = [5.0, 9.9, 10.1, 25.0]
        obs = GriddedObservations("reflectivity", vals, np.ones((1, 1, 4), bool), 5.0)
        out = gross_error_check(obs, np.zeros((1, 1, 4)), threshold=10.0)
        assert list(out.valid[0, 0]) == [True, True, False, False]

    def test_invalid_stay_invalid(self):
        obs = GriddedObservations(
            "doppler", np.zeros((1, 2, 2), np.float32), np.zeros((1, 2, 2), bool), 3.0
        )
        out = gross_error_check(obs, np.zeros((1, 2, 2)), threshold=15.0)
        assert out.n_valid == 0
        assert out.n_rejected_gross == 0  # nothing valid to reject

    def test_shape_mismatch(self):
        obs = GriddedObservations(
            "doppler", np.zeros((1, 2, 2), np.float32), np.ones((1, 2, 2), bool), 3.0
        )
        with pytest.raises(ValueError):
            gross_error_check(obs, np.zeros((2, 2, 2)), 15.0)


class TestSuperob:
    @pytest.fixture(scope="class")
    def grid(self):
        return Grid(reduced_inner_domain(nx=8, nz=4))

    def test_averages_samples_in_cell(self, grid):
        x = np.array([1000.0, 1001.0, 1002.0])
        y = np.array([1000.0, 1000.0, 1000.0])
        z = np.array([100.0, 100.0, 100.0])
        v = np.array([10.0, 20.0, 30.0])
        obs = superob_to_grid(grid, x, y, z, v, kind="reflectivity", error_std=5.0)
        assert obs.n_valid == 1
        assert obs.values[obs.valid][0] == pytest.approx(20.0)

    def test_empty_cells_invalid(self, grid):
        obs = superob_to_grid(
            grid,
            np.array([500.0]),
            np.array([500.0]),
            np.array([100.0]),
            np.array([1.0]),
            kind="reflectivity",
            error_std=5.0,
        )
        assert obs.n_valid == 1
        assert obs.valid.sum() == 1

    def test_min_samples_threshold(self, grid):
        x = np.array([500.0, 40000.0, 40001.0])
        y = np.array([500.0, 40000.0, 40000.0])
        z = np.array([100.0, 100.0, 100.0])
        v = np.array([1.0, 2.0, 3.0])
        obs = superob_to_grid(
            grid, x, y, z, v, kind="reflectivity", error_std=5.0, min_samples=2
        )
        # only the doubly-sampled cell survives
        assert obs.n_valid == 1
