"""PNG encoder, colormaps, map views, bird's-eye renderer, ASCII."""

import struct
import zlib

import numpy as np
import pytest

from repro.viz import (
    apply_colormap,
    ascii_field,
    encode_png,
    rainrate_colormap,
    reflectivity_colormap,
    render_birdseye,
    render_comparison,
    render_map_view,
    write_png,
)


def parse_png(data: bytes):
    assert data[:8] == b"\x89PNG\r\n\x1a\n"
    chunks = {}
    off = 8
    while off < len(data):
        (length,) = struct.unpack(">I", data[off : off + 4])
        tag = data[off + 4 : off + 8]
        payload = data[off + 8 : off + 8 + length]
        crc = struct.unpack(">I", data[off + 8 + length : off + 12 + length])[0]
        assert crc == zlib.crc32(tag + payload), tag
        chunks[tag] = payload
        off += 12 + length
    return chunks


class TestPNG:
    def test_valid_structure(self):
        img = np.zeros((5, 7, 3), np.uint8)
        chunks = parse_png(encode_png(img))
        assert set(chunks) == {b"IHDR", b"IDAT", b"IEND"}
        w, h, depth, ctype = struct.unpack(">IIBB", chunks[b"IHDR"][:10])
        assert (w, h, depth, ctype) == (7, 5, 8, 2)

    def test_pixel_roundtrip(self):
        rng = np.random.default_rng(0)
        img = rng.integers(0, 255, (4, 6, 3), dtype=np.uint8)
        chunks = parse_png(encode_png(img))
        raw = zlib.decompress(chunks[b"IDAT"])
        rows = np.frombuffer(raw, np.uint8).reshape(4, 1 + 6 * 3)
        assert np.all(rows[:, 0] == 0)  # filter None
        assert np.array_equal(rows[:, 1:].reshape(4, 6, 3), img)

    def test_grayscale_promoted(self):
        img = np.arange(12, dtype=np.uint8).reshape(3, 4)
        chunks = parse_png(encode_png(img))
        _, _, _, ctype = struct.unpack(">IIBB", chunks[b"IHDR"][:10])
        assert ctype == 2

    def test_rgba(self):
        img = np.zeros((2, 2, 4), np.uint8)
        chunks = parse_png(encode_png(img))
        assert struct.unpack(">IIBB", chunks[b"IHDR"][:10])[3] == 6

    def test_rejects_bad_dtype(self):
        with pytest.raises(TypeError):
            encode_png(np.zeros((2, 2, 3), np.float32))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            encode_png(np.zeros((2, 2, 2), np.uint8))

    def test_write_png(self, tmp_path):
        p = tmp_path / "x.png"
        write_png(str(p), np.zeros((3, 3, 3), np.uint8))
        assert p.read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"


class TestColormaps:
    def test_shapes(self):
        dbz = np.linspace(-30, 60, 10)
        rgb = reflectivity_colormap(dbz)
        assert rgb.shape == (10, 3)
        assert rgb.dtype == np.uint8

    def test_heavy_rain_is_warm_colored(self):
        # >40 dBZ must land in orange/red (red channel dominant), as in
        # Fig. 6a's orange shades
        rgb = reflectivity_colormap(np.array([45.0]))
        assert rgb[0, 0] > rgb[0, 2]
        assert rgb[0, 0] > 200

    def test_no_rain_is_light(self):
        rgb = reflectivity_colormap(np.array([-30.0]))
        assert np.all(rgb[0] > 200)

    def test_rainrate_map(self):
        rgb = rainrate_colormap(np.array([0.0, 50.0]))
        assert np.all(rgb[0] == 255)
        assert rgb[1, 0] > rgb[1, 2]

    def test_apply_dispatch(self):
        v = np.array([10.0])
        assert apply_colormap(v, "reflectivity").shape == (1, 3)
        assert apply_colormap(v, "rainrate").shape == (1, 3)
        with pytest.raises(ValueError):
            apply_colormap(v, "viridis")


class TestMapView:
    def test_shape_and_upscale(self):
        f = np.zeros((8, 10))
        img = render_map_view(f, upscale=3)
        assert img.shape == (24, 30, 3)

    def test_north_up(self):
        f = np.zeros((8, 8))
        f[0, :] = 60.0  # southmost row is heavy rain
        img = render_map_view(f, upscale=1)
        # heavy rain (deep red, low blue) should appear in the BOTTOM row
        assert img[-1, 0, 2] < img[0, 0, 2]

    def test_hatching_marks_invalid(self):
        f = np.full((8, 8), 20.0)
        valid = np.ones((8, 8), bool)
        valid[:, :4] = False
        img = render_map_view(f, valid=valid, upscale=4)
        left = img[:, : 4 * 4]
        right = img[:, 4 * 4 :]
        # hatched gray pixels only on the invalid side
        assert np.any(np.all(left == 90, axis=-1))
        assert not np.any(np.all(right == 90, axis=-1))

    def test_comparison_panel(self):
        fc = np.zeros((6, 6))
        ob = np.zeros((6, 6))
        img = render_comparison(fc, ob, upscale=2, gap=4)
        assert img.shape == (12, 12 + 4 + 12, 3)


class TestBirdseye:
    def test_empty_volume_blank(self):
        img = render_birdseye(
            np.full((4, 6, 6), -30.0), z_heights=np.linspace(0, 4000, 4), dx=500.0
        )
        assert np.all(img == 255)

    def test_storm_renders_pixels(self):
        dbz = np.full((6, 10, 10), -30.0)
        dbz[:4, 4:7, 4:7] = 45.0  # a rain core
        img = render_birdseye(dbz, z_heights=np.linspace(0, 6000, 6), dx=500.0)
        assert np.any(img < 250)

    def test_vertical_stretch_changes_height(self):
        dbz = np.full((8, 6, 6), -30.0)
        dbz[:, 2:4, 2:4] = 35.0
        i1 = render_birdseye(dbz, z_heights=np.linspace(0, 8000, 8), dx=500.0, vertical_stretch=1.0)
        i3 = render_birdseye(dbz, z_heights=np.linspace(0, 8000, 8), dx=500.0, vertical_stretch=3.0)
        assert i3.shape[0] > i1.shape[0]


class TestAscii:
    def test_renders_lines(self):
        f = np.linspace(0, 1, 64).reshape(8, 8)
        s = ascii_field(f)
        assert len(s.splitlines()) == 8

    def test_constant_field(self):
        s = ascii_field(np.zeros((4, 4)))
        assert set(s) <= {" ", "\n"}

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            ascii_field(np.zeros((2, 2, 2)))
