import pytest

from repro.config import (
    BDA2021_SYSTEM,
    OPERATIONAL_SYSTEMS,
    DomainConfig,
    JITDTConfig,
    LETKFConfig,
    NodeAllocation,
    RadarConfig,
    ScaleConfig,
    WorkflowConfig,
    paper_inner_domain,
    reduced_inner_domain,
)


class TestDomainConfig:
    def test_paper_inner_domain_matches_table3(self):
        d = paper_inner_domain()
        assert (d.nx, d.ny, d.nz) == (256, 256, 60)
        assert d.dx == 500.0
        assert d.extent_x == pytest.approx(128_000.0)
        assert d.ztop == pytest.approx(16_400.0)

    def test_reduced_domain_preserves_extent(self):
        d = reduced_inner_domain(nx=32)
        assert d.extent_x == pytest.approx(128_000.0)
        assert d.extent_y == pytest.approx(128_000.0)

    def test_scaled_coarsens(self):
        d = paper_inner_domain().scaled(8.0)
        assert d.nx == 32
        assert d.extent_x == pytest.approx(128_000.0)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            DomainConfig(name="bad", nx=1, ny=4, nz=4, dx=500, dy=500, ztop=1000)
        with pytest.raises(ValueError):
            DomainConfig(name="bad", nx=4, ny=4, nz=4, dx=-1, dy=500, ztop=1000)


class TestScaleConfig:
    def test_table3_defaults(self):
        c = ScaleConfig()
        assert c.ensemble_size_analysis == 1000
        assert c.ensemble_size_forecast == 11
        assert c.dt == pytest.approx(0.4)
        assert c.integration_type == "HEVI"
        assert c.dtype == "float32"

    def test_table3_physics_schemes_complete(self):
        schemes = ScaleConfig().physics_schemes()
        assert set(schemes) == {
            "cloud_microphysics",
            "radiation",
            "surface_flux",
            "boundary_layer",
            "turbulence",
        }

    def test_reduced_scales_dt_with_mesh(self):
        c = ScaleConfig().reduced(nx=32)
        # dt grows with dx to keep the horizontal CFL of the 500 m / 0.4 s pair
        assert c.dt == pytest.approx(0.4 * c.domain.dx / 500.0)

    def test_reduced_keeps_forecast_members_capped(self):
        c = ScaleConfig().reduced(members=5)
        assert c.ensemble_size_forecast <= 5


class TestLETKFConfig:
    def test_table2_defaults(self):
        c = LETKFConfig()
        assert c.ensemble_size == 1000
        assert c.analysis_zmin == 500.0 and c.analysis_zmax == 11000.0
        assert c.obs_resolution == 500.0
        assert c.obs_error_refl_dbz == 5.0
        assert c.obs_error_doppler_ms == 3.0
        assert c.max_obs_per_grid == 1000
        assert c.gross_error_refl_dbz == 10.0
        assert c.gross_error_doppler_ms == 15.0
        assert c.localization_h == 2000.0 and c.localization_v == 2000.0
        assert c.rtpp_factor == 0.95

    def test_rejects_tiny_ensemble(self):
        with pytest.raises(ValueError):
            LETKFConfig(ensemble_size=1)

    def test_rejects_bad_rtpp(self):
        with pytest.raises(ValueError):
            LETKFConfig(rtpp_factor=1.5)

    def test_rejects_unknown_solver(self):
        with pytest.raises(ValueError):
            LETKFConfig(eigensolver="cuda")


class TestNodeAllocation:
    def test_paper_numbers(self):
        n = NodeAllocation()
        assert n.total_nodes == 11_580
        assert n.inner_nodes == 8_888
        assert n.part1_nodes == 8_008
        assert n.part2_nodes == 880
        assert n.outer_nodes == 2_002

    def test_seven_percent_of_fugaku(self):
        # the paper says ~7% of the full system
        assert NodeAllocation().fugaku_fraction == pytest.approx(0.07, abs=0.01)

    def test_part_split_must_be_exact(self):
        with pytest.raises(ValueError):
            NodeAllocation(part1_nodes=8000, part2_nodes=880)

    def test_allocation_cannot_exceed_total(self):
        with pytest.raises(ValueError):
            NodeAllocation(total_nodes=9000)


class TestTable1Registry:
    def test_six_operational_systems(self):
        assert len(OPERATIONAL_SYSTEMS) == 6
        names = {s.name for s in OPERATIONAL_SYSTEMS}
        assert {"LFM", "HRRR v4", "UKV", "AROME France", "ICON-D2"} <= names

    def test_bda_row(self):
        assert BDA2021_SYSTEM.grid_spacing_m == 500.0
        assert BDA2021_SYSTEM.init_interval_s == 30.0
        assert BDA2021_SYSTEM.da_members == 1000
        assert BDA2021_SYSTEM.ensemble_members == 11

    def test_da_member_parsing(self):
        icon = next(s for s in OPERATIONAL_SYSTEMS if s.name == "ICON-D2")
        assert icon.da_members == 40
        ukv = next(s for s in OPERATIONAL_SYSTEMS if s.name == "UKV")
        assert ukv.da_members == 1  # pure 4DVar

    def test_two_orders_of_magnitude_claim(self):
        # the headline Table-1 claim: BDA problem-size rate is >= 100x
        # every operational system's
        bda = BDA2021_SYSTEM.problem_size_rate()
        for s in OPERATIONAL_SYSTEMS:
            assert bda / s.problem_size_rate() >= 100.0

    def test_refresh_120x_faster(self):
        # 30 s vs 1 h = 120x (Sec. 3)
        assert 3600.0 / BDA2021_SYSTEM.init_interval_s == 120.0


class TestWorkflowConfig:
    def test_stage_means_fit_deadline(self):
        c = WorkflowConfig()
        budget = (
            c.file_creation_mean_s
            + c.transfer_mean_s
            + c.letkf_mean_s
            + c.forecast_30min_mean_s
        )
        assert budget < c.deadline_s

    def test_jitdt_goodput_matches_paper(self):
        # ~100 MB in ~3 s
        j = JITDTConfig()
        t = j.file_bytes * 8 / (j.effective_goodput_gbps * 1e9)
        assert 2.0 < t < 4.5

    def test_radar_scan_interval(self):
        assert RadarConfig().scan_interval == 30.0

    def test_radar_full_scale_volume_near_100mb(self):
        from repro.radar.fileformat import volume_nbytes

        r = RadarConfig()
        size = volume_nbytes((r.n_elevations, r.n_azimuths, r.n_gates))
        assert 60e6 < size < 140e6
