"""Fault-injection harness + graceful-degradation layer tests.

Covers the resilience subsystem end to end: deterministic fault
injection, retry/backoff policy and circuit breaker, the fail-safe
integration, the seeded acceptance campaign (checkpoint/kill/resume
bit-identity), input validation in the radar->obs path, and the
DACycler degradation ladder at tiny scale.
"""

import copy
import math

import numpy as np
import pytest

from repro.config import LETKFConfig, RadarConfig, ScaleConfig, WorkflowConfig
from repro.core import BDASystem
from repro.jitdt.failsafe import FailSafeMonitor
from repro.letkf.qc import (
    GriddedObservations,
    screen_observations,
    validate_gridded,
)
from repro.model.initial import convective_sounding
from repro.resilience import (
    FAULT_KINDS,
    CircuitBreaker,
    FaultCampaign,
    FaultInjector,
    FaultRates,
    RetryPolicy,
    load_checkpoint,
    resilience_metrics,
    save_checkpoint,
)
from repro.workflow.realtime import CycleRecord, RealtimeWorkflow


# ---------------------------------------------------------------------------
# FaultInjector
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_same_seed_same_faults(self):
        a = FaultInjector(seed=3)
        b = FaultInjector(seed=3)
        fa = [a.faults_for_cycle(c) for c in range(300)]
        fb = [b.faults_for_cycle(c) for c in range(300)]
        assert fa == fb

    def test_different_seed_differs(self):
        a = FaultInjector(seed=3)
        b = FaultInjector(seed=4)
        fa = [f for c in range(300) for f in a.faults_for_cycle(c)]
        fb = [f for c in range(300) for f in b.faults_for_cycle(c)]
        assert fa != fb

    def test_stateless_per_cycle(self):
        # faults of cycle c depend on (seed, c) only — query order must
        # not matter (this is what makes checkpoint/resume exact)
        a = FaultInjector(seed=9)
        b = FaultInjector(seed=9)
        order_a = [a.faults_for_cycle(c) for c in range(100)]
        order_b = [b.faults_for_cycle(c) for c in reversed(range(100))]
        assert order_a == list(reversed(order_b))

    def test_all_off_injects_nothing(self):
        inj = FaultInjector(FaultRates.all_off(), seed=1)
        assert all(not inj.faults_for_cycle(c) for c in range(500))

    def test_only_restricts_kinds(self):
        inj = FaultInjector(FaultRates.only("volume-nan", rate=0.5), seed=1)
        kinds = {f.kind for c in range(200) for f in inj.faults_for_cycle(c)}
        assert kinds == {"volume-nan"}

    def test_only_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRates.only("meteor-strike")

    def test_rates_cover_every_kind(self):
        rates = FaultRates()
        for kind in FAULT_KINDS:
            assert rates.rate(kind) > 0

    def test_severity_positive_and_capped(self):
        from repro.resilience.faults import _SEVERITY

        inj = FaultInjector(FaultRates(**{
            k.replace("-", "_"): 1.0 for k in FAULT_KINDS
        }), seed=5)
        for c in range(50):
            for f in inj.faults_for_cycle(c):
                assert f.severity > 0
                assert f.severity <= _SEVERITY[f.kind][1]

    def test_poison_volume(self):
        rng = np.random.default_rng(0)
        values = np.zeros((4, 5, 5), dtype=np.float32)
        valid = np.ones_like(values, dtype=bool)
        FaultInjector.poison_volume(values, valid, 0.25, rng)
        n_nan = int(np.count_nonzero(np.isnan(values)))
        assert n_nan == round(0.25 * values.size)

    def test_truncate_volume_drops_top_levels(self):
        valid = np.ones((10, 3, 3), dtype=bool)
        FaultInjector.truncate_volume(valid, 0.4)
        assert not valid[6:].any()
        assert valid[:6].all()
        # never truncates everything
        valid2 = np.ones((10, 3, 3), dtype=bool)
        FaultInjector.truncate_volume(valid2, 1.0)
        assert valid2[0].all()


# ---------------------------------------------------------------------------
# RetryPolicy / CircuitBreaker
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_legacy_defaults(self):
        # the default schedule reproduces the original fixed-two-attempt
        # fail-safe: constant 15 s timeout, 20 s then 40 s penalty
        p = RetryPolicy()
        assert p.timeout(0) == p.timeout(1) == 15.0
        assert p.penalty(0) == 20.0
        assert p.penalty(1) == 40.0

    def test_exponential_timeout_backoff(self):
        p = RetryPolicy(max_attempts=4, timeout_s=10.0, timeout_backoff=2.0)
        assert [p.timeout(i) for i in range(4)] == [10.0, 20.0, 40.0, 80.0]

    def test_caps(self):
        p = RetryPolicy(
            max_attempts=6, penalty_s=30.0, penalty_backoff=3.0,
            max_penalty_s=100.0, timeout_s=50.0, timeout_backoff=2.0,
            max_timeout_s=60.0,
        )
        assert p.penalty(5) == 100.0
        assert p.timeout(5) == 60.0

    def test_worst_case_bounds_supervision(self):
        p = RetryPolicy()
        assert p.worst_case_seconds() == pytest.approx(15 + 20 + 15 + 40)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(penalty_backoff=0.5)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        br = CircuitBreaker(failure_threshold=3, cooldown=2)
        for _ in range(2):
            br.record_failure()
        assert br.state == "closed"
        br.record_failure()
        assert br.is_open
        assert br.n_opens == 1

    def test_cooldown_then_half_open_trial(self):
        br = CircuitBreaker(failure_threshold=1, cooldown=2)
        br.record_failure()
        assert not br.allow()  # denial 1
        assert not br.allow()  # denial 2 -> half-open
        assert br.state == "half-open"
        assert br.allow()  # the trial is admitted
        br.record_success()
        assert br.state == "closed"
        assert br.n_short_circuits == 2

    def test_half_open_failure_reopens(self):
        br = CircuitBreaker(failure_threshold=1, cooldown=1)
        br.record_failure()
        assert not br.allow()
        assert br.state == "half-open"
        br.record_failure()
        assert br.is_open
        assert br.n_opens == 2

    def test_success_resets_streak(self):
        br = CircuitBreaker(failure_threshold=2, cooldown=1)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"

    def test_state_dict_roundtrip(self):
        br = CircuitBreaker(failure_threshold=2, cooldown=3)
        br.record_failure()
        br.record_failure()
        br.allow()
        twin = CircuitBreaker(failure_threshold=2, cooldown=3)
        twin.load_state_dict(br.state_dict())
        assert twin.state_dict() == br.state_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestFailSafeBreakerIntegration:
    def test_streak_opens_circuit_and_short_circuits(self):
        fs = FailSafeMonitor(breaker=CircuitBreaker(failure_threshold=2, cooldown=3))
        bad = [(100.0, True), (100.0, True)]
        assert fs.supervise(0.0, bad) is None
        assert fs.supervise(30.0, bad) is None
        assert fs.breaker.is_open
        # while open, cycles are denied without burning restarts
        restarts_before = fs.restarts
        assert fs.supervise(60.0, [(3.0, False)]) is None
        assert fs.restarts == restarts_before
        assert fs.short_circuited_cycles == 1

    def test_half_open_recovery_closes(self):
        fs = FailSafeMonitor(breaker=CircuitBreaker(failure_threshold=1, cooldown=1))
        assert fs.supervise(0.0, [(99.0, True), (99.0, True)]) is None
        assert fs.supervise(30.0, [(3.0, False)]) is None  # cooldown denial
        assert fs.supervise(60.0, [(3.0, False)]) == 3.0  # half-open trial
        assert fs.breaker.state == "closed"

    def test_restart_rate_is_per_cycle(self):
        fs = FailSafeMonitor()
        fs.supervise(0.0, [(100.0, False), (3.0, False)])  # 1 restart
        fs.supervise(30.0, [(3.0, False)])  # clean
        fs.supervise(60.0, [(3.0, False)])  # clean
        assert fs.cycles_supervised == 3
        assert fs.restart_rate == pytest.approx(1 / 3)

    def test_restart_rate_empty(self):
        assert FailSafeMonitor().restart_rate == 0.0


# ---------------------------------------------------------------------------
# Checkpoint file format
# ---------------------------------------------------------------------------


class TestCheckpointFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ck.npz"
        meta = {"kind": "x", "nested": {"a": [1, 2.5, "s"], "b": None}}
        arrays = {"m": np.arange(12.0).reshape(3, 4)}
        save_checkpoint(path, meta, arrays)
        m2, a2 = load_checkpoint(path)
        assert m2 == meta
        assert np.array_equal(a2["m"], arrays["m"])

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_checkpoint(tmp_path / "x.npz", {}, {"__meta__": np.zeros(1)})

    def test_non_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez(path, a=np.zeros(1))
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, {"v": 1})
        save_checkpoint(path, {"v": 2})
        meta, _ = load_checkpoint(path)
        assert meta["v"] == 2
        assert not path.with_suffix(".npz.tmp").exists()


# ---------------------------------------------------------------------------
# CycleRecord / deadline_fraction fixes (satellite a)
# ---------------------------------------------------------------------------


class TestCycleRecordFailureSemantics:
    def test_time_to_solution_nan_when_failed(self):
        rec = CycleRecord(cycle=5, t_obs=150.0, ok=False, skipped_reason="outage")
        assert math.isnan(rec.time_to_solution)

    def test_breakdown_raises_when_failed(self):
        rec = CycleRecord(cycle=5, t_obs=150.0, ok=False, skipped_reason="outage")
        with pytest.raises(ValueError, match="no breakdown"):
            rec.breakdown()

    def test_breakdown_ok_record(self):
        rec = CycleRecord(
            cycle=0, t_obs=0.0, ok=True, t_file=3.0, t_transferred=6.0,
            t_analysis=20.0, t_product=100.0,
        )
        b = rec.breakdown()
        assert b["file_creation"] == 3.0
        assert sum(b.values()) == pytest.approx(rec.time_to_solution)

    def test_deadline_fraction_denominators(self):
        wf = RealtimeWorkflow(WorkflowConfig(), seed=1)
        for c in range(8):
            wf.run_cycle(c, in_outage=(c % 2 == 0))
        prod = wf.deadline_fraction()  # default: produced
        att = wf.deadline_fraction(denominator="attempted")
        assert prod == pytest.approx(1.0)
        assert att == pytest.approx(0.5)

    def test_deadline_fraction_unknown_policy(self):
        wf = RealtimeWorkflow(WorkflowConfig(), seed=1)
        with pytest.raises(ValueError, match="denominator"):
            wf.deadline_fraction(denominator="bogus")

    def test_deadline_fraction_empty(self):
        wf = RealtimeWorkflow(WorkflowConfig(), seed=1)
        assert wf.deadline_fraction() == 0.0
        assert wf.deadline_fraction(denominator="attempted") == 0.0


# ---------------------------------------------------------------------------
# Acceptance campaign (the ISSUE's headline criterion)
# ---------------------------------------------------------------------------


class TestFaultCampaign:
    N = 2000

    @pytest.fixture(scope="class")
    def report(self):
        return FaultCampaign(seed=2021).run(self.N)

    def test_campaign_completes_all_cycles(self, report):
        assert report.n_cycles == self.N

    def test_every_fault_kind_struck(self, report):
        # at default rates a 2,000-cycle campaign exercises all types
        assert set(report.fault_counts) == set(FAULT_KINDS)

    def test_metrics_finite_and_sane(self, report):
        assert 0.5 < report.availability <= 1.0
        assert 0.0 < report.degraded_fraction < 0.5
        assert 0.0 < report.deadline_fraction <= 1.0
        assert report.n_produced + report.n_failed == self.N
        assert np.isfinite(report.mean_time_to_recover_s)
        assert report.n_recoveries > 0
        assert report.restarts > 0

    def test_record_invariants(self):
        camp = FaultCampaign(seed=77)
        camp.run(300)
        for rec in camp.workflow.records:
            if rec.ok:
                assert rec.time_to_solution > 0
            else:
                assert math.isnan(rec.time_to_solution)
                assert rec.skipped_reason in ("transfer-failed", "circuit-open")

    def test_same_seed_reproduces_identical_metrics(self, report):
        again = FaultCampaign(seed=2021).run(self.N)
        assert again == report

    def test_different_seed_differs(self, report):
        other = FaultCampaign(seed=2022).run(self.N)
        assert other != report

    def test_checkpoint_kill_resume_is_exact(self, report, tmp_path):
        path = tmp_path / "campaign.npz"
        camp = FaultCampaign(seed=2021)
        camp.run(self.N // 2)
        camp.checkpoint(path)
        del camp  # the "kill"

        resumed = FaultCampaign.resume(path)
        assert resumed.next_cycle == self.N // 2
        assert resumed.run(self.N) == report

    def test_resume_records_match_cycle_by_cycle(self, tmp_path):
        path = tmp_path / "c.npz"
        full = FaultCampaign(seed=5)
        full.run(400)
        part = FaultCampaign(seed=5)
        part.run(150)
        part.checkpoint(path)
        resumed = FaultCampaign.resume(path)
        resumed.run(400)
        assert resumed.workflow.records == full.workflow.records

    def test_resume_rejects_foreign_checkpoint(self, tmp_path):
        path = tmp_path / "other.npz"
        save_checkpoint(path, {"kind": "da-cycler"})
        with pytest.raises(ValueError, match="not a fault-campaign"):
            FaultCampaign.resume(path)

    def test_circuit_breaker_engages_under_stall_storm(self):
        # deterministic stall every cycle: the breaker must open and
        # convert restart-burning cycles into cheap short circuits
        camp = FaultCampaign(
            seed=1, rates=FaultRates.only("transfer-stall", rate=1.0),
            breaker_threshold=3, breaker_cooldown=5,
        )
        rep = camp.run(100)
        assert rep.availability == 0.0
        assert rep.short_circuited_cycles > 50
        assert {r.skipped_reason for r in camp.workflow.records} == {
            "transfer-failed", "circuit-open"
        }

    def test_report_text_renders(self, report):
        from repro.report import resilience_text

        text = resilience_text(report)
        assert "availability" in text
        assert "mean time-to-recover" in text
        assert report.summary()

    def test_metrics_pure_function_empty(self):
        rep = resilience_metrics([])
        assert rep.n_cycles == 0
        assert rep.availability == 0.0
        assert math.isnan(rep.mean_time_to_recover_s)


class TestReplayWithResilienceFields:
    def test_log_roundtrip_preserves_degraded_and_fault(self, tmp_path):
        from repro.workflow.replay import read_log, write_log

        camp = FaultCampaign(seed=13)
        camp.run(120)
        path = tmp_path / "log.jsonl"
        write_log(camp.workflow.records, path)
        back = list(read_log(path))
        assert back == camp.workflow.records
        assert any(r.degraded for r in back)
        assert any(r.fault for r in back)


# ---------------------------------------------------------------------------
# Input validation in the radar -> obs path (satellite c)
# ---------------------------------------------------------------------------


def _obs(shape=(4, 5, 5), t_valid=float("nan"), kind="reflectivity"):
    values = np.full(shape, 10.0, dtype=np.float32)
    valid = np.ones(shape, dtype=bool)
    return GriddedObservations(
        kind=kind, values=values, valid=valid, error_std=5.0, t_valid=t_valid
    )


class TestObsValidation:
    def test_clean_volume_passes(self):
        assert validate_gridded(_obs(), (4, 5, 5)) == []

    def test_wrong_mesh_rejected(self):
        problems = validate_gridded(_obs(shape=(3, 5, 5)), (4, 5, 5))
        assert len(problems) == 1
        assert "analysis mesh" in problems[0]

    def test_nonfinite_on_valid_cells_rejected(self):
        obs = _obs()
        obs.values[0, 0, 0] = np.nan
        obs.values[1, 2, 3] = np.inf
        problems = validate_gridded(obs, (4, 5, 5))
        assert any("non-finite" in p for p in problems)

    def test_nonfinite_on_invalid_cells_ignored(self):
        obs = _obs()
        obs.values[0, 0, 0] = np.nan
        obs.valid[0, 0, 0] = False
        assert validate_gridded(obs, (4, 5, 5)) == []

    def test_empty_volume_rejected(self):
        obs = _obs()
        obs.valid[:] = False
        problems = validate_gridded(obs)
        assert any("no valid cells" in p for p in problems)

    def test_non_monotonic_timestamp_rejected(self):
        problems = validate_gridded(_obs(t_valid=90.0), t_prev=90.0)
        assert any("non-monotonic" in p for p in problems)
        assert validate_gridded(_obs(t_valid=120.0), t_prev=90.0) == []

    def test_unknown_timestamp_not_checked(self):
        assert validate_gridded(_obs(), t_prev=90.0) == []

    def test_screen_splits_good_and_bad(self):
        good = _obs()
        bad = _obs()
        bad.values[bad.valid] = np.nan
        accepted, reasons = screen_observations([good, bad], (4, 5, 5))
        assert accepted == [good]
        assert len(reasons) == 1

    def test_operator_screen_tracks_scan_time(self):
        from types import SimpleNamespace

        from repro.letkf.obsope import _ScreeningMixin

        class Op(_ScreeningMixin):
            def __init__(self):
                self.grid = SimpleNamespace(shape=(4, 5, 5))
                self._last_t_valid = None

        op = Op()
        a, r = op.screen([_obs(t_valid=30.0)])
        assert len(a) == 1 and op._last_t_valid == 30.0
        # a stale retransmit of the same scan is now rejected
        a, r = op.screen([_obs(t_valid=30.0)])
        assert a == [] and any("non-monotonic" in x for x in r)
        # and a fresh scan is accepted again
        a, r = op.screen([_obs(t_valid=60.0)])
        assert len(a) == 1 and op._last_t_valid == 60.0


# ---------------------------------------------------------------------------
# DACycler degradation ladder (tiny-scale OSSE)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny():
    scfg = ScaleConfig().reduced(nx=12, nz=10, members=4)
    lcfg = LETKFConfig(
        ensemble_size=4,
        analysis_zmin=0.0,
        analysis_zmax=20000.0,
        eigensolver="lapack",
        localization_h=15000.0,
        localization_v=5000.0,
        gross_error_refl_dbz=100.0,
        gross_error_doppler_ms=100.0,
    )
    sys = BDASystem(
        scfg, lcfg, RadarConfig().reduced(),
        sounding=convective_sounding(cape_factor=1.1), seed=3,
    )
    sys.trigger_convection(n=2, amplitude=5.0)
    sys.spinup_nature(600.0)
    return sys


def _ensemble_finite(sys) -> bool:
    return all(
        bool(np.all(np.isfinite(a)))
        for st in sys.ensemble.members
        for a in st.fields.values()
    )


class TestDACyclerDegradation:
    def test_healthy_cycle_is_analysis_mode(self, tiny):
        res = tiny.cycle()
        assert res.mode == "analysis"
        assert not res.degraded
        assert res.n_members_used == len(tiny.ensemble)
        assert res.n_volumes_rejected == 0

    def test_missing_obs_free_run(self, tiny):
        res = tiny.cycler.run_cycle(None)
        assert res.mode == "free-run"
        assert res.degraded
        assert res.n_members_used == 0
        assert _ensemble_finite(tiny)

    def test_rejected_obs_free_run(self, tiny):
        tiny.nature = tiny.nature_model.integrate(tiny.nature, 30.0)
        obs = tiny.observe_nature()
        for ob in obs:
            ob.values[ob.valid] = np.nan  # wholly poisoned volumes
        res = tiny.cycler.run_cycle(obs)
        assert res.mode == "free-run"
        assert res.n_volumes_rejected == len(obs)
        assert all("non-finite" in r for r in res.rejection_reasons)
        assert _ensemble_finite(tiny)

    def test_partially_poisoned_volume_still_assimilates_good_one(self, tiny):
        tiny.nature = tiny.nature_model.integrate(tiny.nature, 30.0)
        obs = tiny.observe_nature()
        obs[1].values[obs[1].valid] = np.inf
        res = tiny.cycler.run_cycle(obs)
        assert res.mode == "analysis"
        assert res.n_volumes_rejected == 1
        assert res.diagnostics.n_obs_used > 0

    def test_lost_member_reduced_analysis_and_refill(self, tiny):
        rng = np.random.default_rng(0)
        FaultInjector.poison_members(
            tiny.ensemble.members, 0.3, rng, mode="nan"
        )
        tiny.nature = tiny.nature_model.integrate(tiny.nature, 30.0)
        obs = tiny.observe_nature()
        res = tiny.cycler.run_cycle(obs)
        assert res.mode == "reduced"
        assert res.degraded
        assert res.n_members_recovered == 1
        assert res.n_members_used == len(tiny.ensemble) - 1
        assert _ensemble_finite(tiny)

    def test_refilled_members_carry_spread(self, tiny):
        # a refilled member is not a bare clone: spread stays nonzero
        assert tiny.ensemble.spread("theta_p") > 1e-6

    def test_catastrophic_loss_rolls_back(self, tiny):
        # all but one member poisoned: fewer than 2 healthy -> rollback
        rng = np.random.default_rng(1)
        FaultInjector.poison_members(tiny.ensemble.members, 0.99, rng, mode="nan")
        res = tiny.cycler.run_cycle(None)
        assert res.mode == "rollback"
        assert _ensemble_finite(tiny)

    def test_recovers_to_analysis_after_rollback(self, tiny):
        tiny.nature = tiny.nature_model.integrate(tiny.nature, 30.0)
        res = tiny.cycler.run_cycle(tiny.observe_nature())
        assert res.mode == "analysis"
        assert _ensemble_finite(tiny)

    def test_guard_off_fails_fast(self, tiny):
        # diverged members with guard disabled are not masked (the old
        # fail-fast behaviour remains available for debugging)
        tiny.cycler.guard = False
        try:
            obs = tiny.last_obs
            res = tiny.cycler.run_cycle(obs)
            assert res.n_volumes_rejected == 0
        finally:
            tiny.cycler.guard = True

    def test_mini_fault_storm_keeps_ensemble_finite(self, tiny):
        # data-level fault storm: every cycle strikes the obs or the
        # ensemble, and the ladder must keep the state finite throughout
        rng = np.random.default_rng(42)
        modes = []
        for k in range(8):
            tiny.nature = tiny.nature_model.integrate(tiny.nature, 30.0)
            obs = tiny.observe_nature()
            strike = k % 4
            if strike == 0:
                FaultInjector.poison_volume(
                    obs[0].values, obs[0].valid, 0.3, rng
                )
            elif strike == 1:
                FaultInjector.truncate_volume(obs[0].valid, 0.5)
                FaultInjector.truncate_volume(obs[1].valid, 0.5)
            elif strike == 2:
                FaultInjector.poison_members(
                    tiny.ensemble.members, 0.3, rng, mode="diverge"
                )
            res = tiny.cycler.run_cycle(obs)
            modes.append(res.mode)
            assert _ensemble_finite(tiny)
        assert "analysis" in modes  # the clean cycles still assimilate


class TestDACyclerCheckpoint:
    def test_state_roundtrip_resumes_bit_identically(self, tiny, tmp_path):
        path = tmp_path / "cycler.npz"
        tiny.nature = tiny.nature_model.integrate(tiny.nature, 30.0)
        obs = tiny.observe_nature()
        obs_copy = [o.copy() for o in obs]

        tiny.cycler.save(path)
        tiny.cycler.run_cycle(obs)
        after_a = [
            {v: a.copy() for v, a in st.fields.items()}
            for st in tiny.ensemble.members
        ]
        cycle_a = tiny.cycler._cycle

        tiny.cycler.load(path)
        tiny.cycler.run_cycle(obs_copy)
        assert tiny.cycler._cycle == cycle_a
        for st, ref in zip(tiny.ensemble.members, after_a):
            for v, a in st.fields.items():
                np.testing.assert_array_equal(a, ref[v])

    def test_checkpoint_restores_last_good_and_rng(self, tiny, tmp_path):
        path = tmp_path / "cycler2.npz"
        good_before = (
            None if tiny.cycler._last_good is None
            else [st.copy() for st in tiny.cycler._last_good]
        )
        tiny.cycler.save(path)
        state_before = copy.deepcopy(tiny.cycler._rng.bit_generator.state)
        tiny.cycler._rng.normal(size=100)  # perturb the stream
        tiny.cycler._last_good = None
        tiny.cycler.load(path)
        assert tiny.cycler._rng.bit_generator.state == state_before
        assert (tiny.cycler._last_good is None) == (good_before is None)
        if good_before is not None:
            for st, ref in zip(tiny.cycler._last_good, good_before):
                np.testing.assert_array_equal(
                    st.fields["rhot_p"], ref.fields["rhot_p"]
                )

    def test_wrong_kind_rejected(self, tiny, tmp_path):
        path = tmp_path / "foreign.npz"
        save_checkpoint(path, {"kind": "fault-campaign"})
        with pytest.raises(ValueError, match="not a DACycler"):
            tiny.cycler.load(path)
