"""Multi-parameter (dual-pol) radar moments."""

import numpy as np
import pytest

from repro.radar.dualpol import (
    copolar_correlation,
    differential_reflectivity,
    dualpol_from_state,
    rain_rate_from_kdp,
    specific_differential_phase,
)


class TestZDR:
    def test_zero_without_hydrometeors(self):
        z = differential_reflectivity(np.ones(3), np.zeros(3), np.zeros(3), np.zeros(3), np.zeros(3))
        assert np.allclose(z, 0.0)

    def test_positive_for_rain(self):
        z = differential_reflectivity(
            np.ones(1), np.array([1e-3]), np.zeros(1), np.zeros(1), np.zeros(1)
        )
        assert 0.5 < z[0] < 4.0

    def test_grows_with_rain_content(self):
        qr = np.array([1e-4, 5e-4, 2e-3])
        z = differential_reflectivity(np.ones(3), qr, np.zeros(3), np.zeros(3), np.zeros(3))
        assert np.all(np.diff(z) > 0)

    def test_capped_near_4db(self):
        z = differential_reflectivity(
            np.ones(1), np.array([0.1]), np.zeros(1), np.zeros(1), np.zeros(1)
        )
        assert z[0] <= 4.0

    def test_ice_pulls_toward_zero(self):
        rain_only = differential_reflectivity(
            np.ones(1), np.array([1e-3]), np.zeros(1), np.zeros(1), np.zeros(1)
        )
        mixed = differential_reflectivity(
            np.ones(1), np.array([1e-3]), np.array([1e-3]), np.array([1e-3]), np.zeros(1)
        )
        assert mixed[0] < rain_only[0]


class TestKDP:
    def test_linear_in_rain(self):
        k1 = specific_differential_phase(np.ones(1), np.array([1e-3]))
        k2 = specific_differential_phase(np.ones(1), np.array([2e-3]))
        assert k2[0] == pytest.approx(2 * k1[0])

    def test_zero_without_rain(self):
        assert specific_differential_phase(np.ones(2), np.zeros(2)).sum() == 0.0

    def test_plausible_magnitude(self):
        # 1 g/m^3 of rain at X band: KDP of order a few deg/km
        k = specific_differential_phase(np.ones(1), np.array([1e-3]))
        assert 0.5 < k[0] < 50.0


class TestRhoHV:
    def test_unity_in_pure_rain(self):
        r = copolar_correlation(np.ones(1), np.array([2e-3]), np.zeros(1), np.zeros(1), np.zeros(1))
        assert r[0] == pytest.approx(1.0)

    def test_depressed_in_mixture(self):
        pure = copolar_correlation(np.ones(1), np.array([1e-3]), np.zeros(1), np.zeros(1), np.zeros(1))
        mix = copolar_correlation(
            np.ones(1), np.array([1e-3]), np.zeros(1), np.array([1e-3]), np.zeros(1)
        )
        assert mix[0] < pure[0]

    def test_bounded(self):
        rng = np.random.default_rng(0)
        q = rng.uniform(0, 5e-3, (4, 5))
        r = copolar_correlation(np.ones((4, 5)), q, q * 0.3, q * 0.2, q * 0.1)
        assert np.all(r > 0.5) and np.all(r <= 1.0)


class TestRainRate:
    def test_monotone(self):
        kdp = np.array([0.5, 1.0, 4.0])
        rr = rain_rate_from_kdp(kdp)
        assert np.all(np.diff(rr) > 0)

    def test_plausible_values(self):
        # KDP of 1 deg/km -> ~15 mm/h at X band
        assert 8.0 < rain_rate_from_kdp(np.array([1.0]))[0] < 25.0

    def test_negative_kdp_clipped(self):
        assert rain_rate_from_kdp(np.array([-1.0]))[0] == 0.0


class TestStateIntegration:
    def test_all_moments_from_state(self, developed_nature):
        mp = dualpol_from_state(developed_nature)
        assert set(mp) == {"zdr", "kdp", "rho_hv", "rain_kdp"}
        g = developed_nature.grid
        for v in mp.values():
            assert v.shape == g.shape
            assert v.dtype == g.dtype
        # the developed storm produces dual-pol signatures
        assert mp["kdp"].max() > 0
        assert mp["zdr"].max() > 0
