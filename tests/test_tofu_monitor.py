"""Tofu topology, workflow monitoring, campaign log replay."""

import numpy as np
import pytest

from repro.comm.tofu import ABC, TofuCoordinates, TofuNetwork
from repro.config import WorkflowConfig
from repro.workflow import RealtimeWorkflow
from repro.workflow.monitor import WorkflowMonitor, detect_outages
from repro.workflow.replay import read_log, replay_into_monitor, write_log


class TestTofu:
    @pytest.fixture(scope="class")
    def net(self):
        return TofuNetwork(nx=6, ny=5, nz=4)

    def test_node_count(self, net):
        assert net.n_nodes == 6 * 5 * 4 * 2 * 3 * 2

    def test_coordinate_roundtrip(self, net):
        for nid in (0, 17, 523, net.n_nodes - 1):
            assert net.node_id(net.coordinates(nid)) == nid

    def test_out_of_range(self, net):
        with pytest.raises(ValueError):
            net.coordinates(net.n_nodes)

    def test_self_hops_zero(self, net):
        assert net.hops(5, 5) == 0

    def test_hops_symmetric(self, net):
        rng = np.random.default_rng(0)
        for _ in range(10):
            a, b = rng.integers(0, net.n_nodes, 2)
            assert net.hops(int(a), int(b)) == net.hops(int(b), int(a))

    def test_torus_wraparound(self, net):
        # neighbors across the x seam are 1 hop apart
        a = net.node_id(TofuCoordinates(0, 0, 0, 0, 0, 0))
        b = net.node_id(TofuCoordinates(5, 0, 0, 0, 0, 0))
        assert net.hops(a, b) == 1

    def test_mesh_axes_do_not_wrap(self, net):
        a = net.node_id(TofuCoordinates(0, 0, 0, 0, 0, 0))
        b = net.node_id(TofuCoordinates(0, 0, 0, 0, ABC[1] - 1, 0))
        assert net.hops(a, b) == ABC[1] - 1

    def test_compact_beats_scattered(self, net):
        # the paper's "efficient node allocation": a compact block has
        # far fewer average hops than a scattered one
        compact = net.compact_block(64)
        scattered = net.scattered_block(64, seed=3)
        assert net.mean_hops(compact) < net.mean_hops(scattered)

    def test_fugaku_scale_constructs(self):
        net = TofuNetwork()  # full-machine extents
        assert net.n_nodes >= 150_000


def make_records(n=200, fail_range=None, late_range=None, seed=0):
    from dataclasses import replace as _replace

    # deterministic quiet baseline: no stragglers (those are tested by
    # injecting lateness explicitly)
    cfg = _replace(WorkflowConfig(), straggler_probability=0.0)
    wf = RealtimeWorkflow(cfg, seed=seed)
    recs = []
    for c in range(n):
        outage = fail_range is not None and fail_range[0] <= c < fail_range[1]
        rec = wf.run_cycle(c, in_outage=outage)
        if late_range and late_range[0] <= c < late_range[1] and rec.ok:
            # inject lateness by rebuilding the record
            from dataclasses import replace

            rec = replace(rec, t_product=rec.t_obs + 400.0)
            wf.records[-1] = rec
        recs.append(rec)
    return recs


class TestMonitor:
    def test_quiet_period_no_alerts(self):
        mon = WorkflowMonitor()
        for r in make_records(100):
            mon.observe(r)
        assert mon.alerts == []
        assert mon.availability() == 1.0

    def test_late_product_alert(self):
        mon = WorkflowMonitor(deadline_s=180.0)
        recs = make_records(50, late_range=(20, 22))
        for r in recs:
            mon.observe(r)
        kinds = [a.kind for a in mon.alerts]
        assert "late-product" in kinds

    def test_failure_streak_alert_fires_once(self):
        mon = WorkflowMonitor(streak_threshold=3)
        for r in make_records(60, fail_range=(10, 25)):
            mon.observe(r)
        streaks = [a for a in mon.alerts if a.kind == "failure-streak"]
        assert len(streaks) == 1

    def test_summary_text(self):
        mon = WorkflowMonitor()
        for r in make_records(30):
            mon.observe(r)
        s = mon.summary()
        assert "availability" in s and "median TTS" in s

    def test_rolling_stats(self):
        mon = WorkflowMonitor(window=50)
        for r in make_records(80, fail_range=(60, 80)):
            mon.observe(r)
        assert mon.availability() < 1.0
        assert np.isfinite(mon.median_tts())


class TestOutageDetection:
    def test_detects_injected_window(self):
        recs = make_records(120, fail_range=(40, 60))
        windows = detect_outages(recs, min_cycles=4)
        assert len(windows) == 1
        start, end = windows[0]
        assert start == pytest.approx(40 * 30.0)
        assert end == pytest.approx(60 * 30.0)

    def test_short_glitches_ignored(self):
        recs = make_records(60, fail_range=(30, 32))
        assert detect_outages(recs, min_cycles=4) == []

    def test_trailing_outage(self):
        recs = make_records(50, fail_range=(40, 50))
        windows = detect_outages(recs, min_cycles=4)
        assert len(windows) == 1


class TestReplay:
    def test_roundtrip(self, tmp_path):
        recs = make_records(40, fail_range=(10, 15))
        p = tmp_path / "campaign.jsonl"
        n = write_log(recs, p)
        assert n == 40
        back = list(read_log(p))
        assert len(back) == 40
        for a, b in zip(recs, back):
            assert a.cycle == b.cycle
            assert a.ok == b.ok
            assert a.t_product == pytest.approx(b.t_product)

    def test_replay_into_monitor(self, tmp_path):
        recs = make_records(60, fail_range=(20, 30))
        p = tmp_path / "c.jsonl"
        write_log(recs, p)
        mon = WorkflowMonitor(streak_threshold=3)
        replay_into_monitor(p, mon)
        assert mon.n_seen == 60
        assert any(a.kind == "failure-streak" for a in mon.alerts)

    def test_rejects_unknown_fields(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"cycle": 1, "bogus": true}\n')
        with pytest.raises(ValueError):
            list(read_log(p))

    def test_tts_preserved_through_log(self, tmp_path):
        recs = make_records(10)
        p = tmp_path / "t.jsonl"
        write_log(recs, p)
        back = list(read_log(p))
        for a, b in zip(recs, back):
            if a.ok:
                assert a.time_to_solution == pytest.approx(b.time_to_solution)
