"""End-to-end BDA OSSE integration tests (reduced scale)."""

import numpy as np
import pytest

from repro.config import LETKFConfig, RadarConfig, ScaleConfig
from repro.core import BDASystem
from repro.model.initial import convective_sounding


@pytest.fixture(scope="module")
def bda():
    scfg = ScaleConfig().reduced(nx=16, nz=12, members=8)
    # paper knobs except: analysis range widened to the reduced grid, and
    # the gross-error thresholds relaxed — from an OSSE cold start the
    # background has rain in the wrong places, and the production 10 dBZ
    # threshold would reject exactly the observations that correct that
    # (the real system avoids this by continuous warm cycling)
    lcfg = LETKFConfig(
        ensemble_size=8,
        analysis_zmin=0.0,
        analysis_zmax=20000.0,
        eigensolver="lapack",
        localization_h=12000.0,
        localization_v=4000.0,
        gross_error_refl_dbz=100.0,
        gross_error_doppler_ms=100.0,
    )
    rcfg = RadarConfig().reduced()
    sys = BDASystem(scfg, lcfg, rcfg, sounding=convective_sounding(cape_factor=1.1), seed=7)
    sys.trigger_convection(n=2, amplitude=5.0)
    sys.spinup_nature(1800.0)
    return sys


class TestOSSESetup:
    def test_nature_and_ensemble_share_grid(self, bda):
        assert bda.nature.grid.shape == bda.ensemble.grid.shape

    def test_nature_diverged_from_ensemble(self, bda):
        # the truth has convection the ensemble doesn't know about yet
        assert bda.analysis_rmse("theta_p") > 0.01

    def test_observe_nature_produces_both_types(self, bda):
        obs = bda.observe_nature()
        kinds = {o.kind for o in obs}
        assert kinds == {"reflectivity", "doppler"}
        for o in obs:
            assert o.n_valid > 0


class TestCycling:
    def test_cycles_beat_free_run(self, bda):
        # the meaningful OSSE claim: assimilation locks the ensemble onto
        # the truth's reflectivity pattern; a free-running copy does not
        from repro.radar.reflectivity import dbz_from_state

        free = [st.copy() for st in bda.ensemble.members]
        results = bda.run_cycles(6)
        assert len(results) == 6
        free = [bda.model.integrate(st, 180.0) for st in free]

        truth = bda.nature_dbz()
        mask = bda.obsope.coverage
        ana = dbz_from_state(bda.ensemble.mean_state())
        free_dbz = np.mean([dbz_from_state(st) for st in free], axis=0)
        corr_da = np.corrcoef(ana[mask], truth[mask])[0, 1]
        corr_free = np.corrcoef(free_dbz[mask], truth[mask])[0, 1]
        assert corr_da > corr_free + 0.1

    def test_cycle_diagnostics(self, bda):
        res = bda.cycle()
        assert res.diagnostics.n_obs_used > 0
        assert res.forecast_seconds > 0
        assert res.letkf_seconds > 0

    def test_ensemble_spread_survives_cycling(self, bda):
        # RTPP 0.95 is there to prevent spread collapse under 30-s cycling
        res = bda.cycle()
        assert res.spread_theta > 1e-4

    def test_ensemble_stays_finite(self, bda):
        for st in bda.ensemble.members:
            for name, arr in st.fields.items():
                assert np.all(np.isfinite(arr)), name


class TestForecast:
    def test_forecast_product_shapes(self, bda):
        fp = bda.forecast(length_seconds=300.0, n_members=3, output_interval=150.0)
        assert fp.member_dbz.shape[0] == 3
        assert fp.member_dbz.shape[1] == 3  # leads 0, 150, 300
        assert fp.lead_seconds[-1] == pytest.approx(300.0)

    def test_lead_zero_is_analysis(self, bda):
        from repro.radar.reflectivity import dbz_from_state

        fp = bda.forecast(length_seconds=150.0, n_members=1, output_interval=150.0)
        mean_dbz = dbz_from_state(bda.ensemble.mean_state())
        assert np.allclose(fp.dbz_at(0.0), mean_dbz, atol=2.0)

    def test_dbz_at_picks_nearest_lead(self, bda):
        fp = bda.forecast(length_seconds=300.0, n_members=2, output_interval=150.0)
        assert np.array_equal(fp.dbz_at(140.0), fp.mean_dbz[1])
        assert np.array_equal(fp.dbz_at(10.0, member=1), fp.member_dbz[1, 0])

    def test_default_member_count_from_config(self, bda):
        fp = bda.forecast(length_seconds=60.0, output_interval=60.0)
        assert fp.member_dbz.shape[0] == bda.scale_config.ensemble_size_forecast


class TestSkillAgainstPersistence:
    def test_bda_analysis_tracks_truth_reflectivity(self, bda):
        # after cycling, the analysis reflectivity pattern must correlate
        # with the truth pattern (the basis of Figs. 6-7)
        from repro.radar.reflectivity import dbz_from_state

        bda.run_cycles(2)
        truth = bda.nature_dbz()
        ana = dbz_from_state(bda.ensemble.mean_state())
        mask = bda.obsope.coverage
        corr = np.corrcoef(ana[mask], truth[mask])[0, 1]
        assert corr > 0.3


class TestRawVolumePath:
    def test_full_polar_chain(self):
        scfg = ScaleConfig().reduced(nx=12, nz=10, members=4)
        lcfg = LETKFConfig(
            ensemble_size=4, analysis_zmin=0.0, analysis_zmax=20000.0,
            eigensolver="lapack", localization_h=15000.0, localization_v=5000.0,
        )
        rcfg = RadarConfig().reduced(n_elevations=8, n_azimuths=36, n_gates=60)
        sys = BDASystem(
            scfg, lcfg, rcfg, sounding=convective_sounding(), seed=1, use_raw_volumes=True
        )
        sys.cycle()
        assert sys.last_scan is not None
        assert sys.last_scan.n_valid > 0
