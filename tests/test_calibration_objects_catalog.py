"""Kernel calibration, SAL object verification, product catalog."""

import json

import numpy as np
import pytest

from repro.core.catalog import CatalogEntry, ProductCatalog
from repro.verify.objects import find_objects, sal
from repro.workflow.calibration import calibrate


class TestCalibration:
    @pytest.fixture(scope="class")
    def calib(self):
        return calibrate(G=400, m=10, no=20, nx=16, nz=10)

    def test_kernel_costs_positive(self, calib):
        assert calib.letkf_seconds_per_unit > 0
        assert calib.model_seconds_per_cell_step > 0

    def test_paper_scale_needs_massive_parallelism(self, calib):
        # the whole point of Fugaku: single-process Python would need
        # orders of magnitude more than the 15-s budget
        assert calib.letkf_paper_seconds_single > 15.0
        assert calib.required_speedup_letkf > 10.0
        assert calib.required_speedup_forecast > 10.0

    def test_report_text(self, calib):
        r = calib.report()
        assert "paper scale" in r
        assert "speedup" in r


def blob(ny, nx, cy, cx, r=2.5, amp=10.0):
    jj, ii = np.mgrid[0:ny, 0:nx]
    return amp * np.exp(-((jj - cy) ** 2 + (ii - cx) ** 2) / (2 * r**2))


class TestFindObjects:
    def test_counts_separated_cells(self):
        f = blob(32, 32, 8, 8) + blob(32, 32, 24, 24)
        objs = find_objects(f, threshold=3.0)
        assert len(objs) == 2

    def test_no_objects_below_threshold(self):
        assert find_objects(np.zeros((8, 8)), 1.0) == []

    def test_center_of_mass(self):
        f = blob(32, 32, 10, 20)
        (obj,) = find_objects(f, 3.0)
        assert obj.center_y == pytest.approx(10.0, abs=0.5)
        assert obj.center_x == pytest.approx(20.0, abs=0.5)

    def test_mass_and_peak(self):
        f = blob(16, 16, 8, 8, amp=10.0)
        (obj,) = find_objects(f, 3.0)
        assert obj.peak == pytest.approx(10.0, rel=0.01)
        assert obj.mass > obj.peak


class TestSAL:
    def test_perfect_forecast_zero(self):
        ob = blob(32, 32, 16, 16)
        s = sal(ob, ob, threshold=3.0)
        assert s["S"] == pytest.approx(0.0, abs=1e-9)
        assert s["A"] == pytest.approx(0.0, abs=1e-9)
        assert s["L"] == pytest.approx(0.0, abs=1e-9)

    def test_amplitude_bias_detected(self):
        ob = blob(32, 32, 16, 16)
        s = sal(2.0 * ob, ob, threshold=3.0)
        assert s["A"] > 0.3

    def test_displacement_in_L_only(self):
        ob = blob(32, 32, 16, 10)
        fc = blob(32, 32, 16, 22)
        s = sal(fc, ob, threshold=3.0)
        assert s["L"] > 0.1
        assert abs(s["A"]) < 0.05  # same total rain

    def test_structure_peakedness(self):
        # broad flat forecast vs peaked observation -> S > 0
        ob = blob(32, 32, 16, 16, r=2.0, amp=20.0)
        fc = blob(32, 32, 16, 16, r=6.0, amp=4.0)
        s = sal(fc, ob, threshold=1.0)
        assert s["S"] > 0.3

    def test_bounds(self):
        rng = np.random.default_rng(0)
        fc = np.maximum(rng.normal(0, 3, (24, 24)), 0)
        ob = np.maximum(rng.normal(0, 3, (24, 24)), 0)
        s = sal(fc, ob, threshold=2.0)
        assert -2.0 <= s["A"] <= 2.0
        if np.isfinite(s["S"]):
            assert -2.0 <= s["S"] <= 2.0
        assert s["L"] >= 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sal(np.zeros((4, 4)), np.zeros((5, 5)), threshold=1.0)


class TestCatalog:
    def make_entry(self, cycle, t0=0.0):
        return CatalogEntry(
            cycle=cycle,
            t_obs=t0 + cycle * 30.0,
            t_published=t0 + cycle * 30.0 + 145.0,
            valid_time=t0 + cycle * 30.0 + 1800.0,
            max_dbz=42.0,
            max_rain_mmh=35.0,
            files={"mapview": f"mapview_{cycle:06d}.png"},
        )

    def test_publish_and_index(self, tmp_path):
        cat = ProductCatalog(tmp_path)
        for c in range(5):
            cat.publish(self.make_entry(c))
        data = json.loads(cat.index_path.read_text())
        assert len(data) == 5
        assert cat.latest().cycle == 4

    def test_monotonic_cycles_enforced(self, tmp_path):
        cat = ProductCatalog(tmp_path)
        cat.publish(self.make_entry(3))
        with pytest.raises(ValueError):
            cat.publish(self.make_entry(3))

    def test_retention(self, tmp_path):
        cat = ProductCatalog(tmp_path, retention=3)
        for c in range(10):
            cat.publish(self.make_entry(c))
        assert len(cat.entries) == 3
        assert cat.entries[0].cycle == 7

    def test_load_roundtrip(self, tmp_path):
        cat = ProductCatalog(tmp_path)
        for c in range(4):
            cat.publish(self.make_entry(c))
        cat2 = ProductCatalog.load(tmp_path)
        assert [e.cycle for e in cat2.entries] == [0, 1, 2, 3]
        assert cat2.latest().time_to_solution == pytest.approx(145.0)

    def test_between(self, tmp_path):
        cat = ProductCatalog(tmp_path)
        for c in range(10):
            cat.publish(self.make_entry(c))
        sel = cat.between(60.0, 150.0)
        assert [e.cycle for e in sel] == [2, 3, 4]

    def test_level_tiles(self, tmp_path, developed_nature):
        from repro.radar.reflectivity import dbz_from_state

        cat = ProductCatalog(tmp_path)
        dbz = dbz_from_state(developed_nature)
        paths = cat.export_level_tiles(
            dbz, developed_nature.grid.z_c, cycle=1, every=4
        )
        manifest = json.loads(open(paths["manifest"]).read())
        assert len(manifest["levels"]) == int(np.ceil(dbz.shape[0] / 4))
        for lv in manifest["levels"]:
            assert (tmp_path / f"tiles_000001/{lv['file']}").exists()
            assert lv["height_m"] >= 0
