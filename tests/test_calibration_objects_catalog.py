"""Kernel calibration, SAL object verification, product catalog."""

import json

import numpy as np
import pytest

from repro.core.catalog import SCHEMA_VERSION, CatalogEntry, ProductCatalog
from repro.verify.objects import find_objects, sal
from repro.workflow.calibration import calibrate


class TestCalibration:
    @pytest.fixture(scope="class")
    def calib(self):
        return calibrate(G=400, m=10, no=20, nx=16, nz=10)

    def test_kernel_costs_positive(self, calib):
        assert calib.letkf_seconds_per_unit > 0
        assert calib.model_seconds_per_cell_step > 0

    def test_paper_scale_needs_massive_parallelism(self, calib):
        # the whole point of Fugaku: single-process Python would need
        # orders of magnitude more than the 15-s budget
        assert calib.letkf_paper_seconds_single > 15.0
        assert calib.required_speedup_letkf > 10.0
        assert calib.required_speedup_forecast > 10.0

    def test_report_text(self, calib):
        r = calib.report()
        assert "paper scale" in r
        assert "speedup" in r


def blob(ny, nx, cy, cx, r=2.5, amp=10.0):
    jj, ii = np.mgrid[0:ny, 0:nx]
    return amp * np.exp(-((jj - cy) ** 2 + (ii - cx) ** 2) / (2 * r**2))


class TestFindObjects:
    def test_counts_separated_cells(self):
        f = blob(32, 32, 8, 8) + blob(32, 32, 24, 24)
        objs = find_objects(f, threshold=3.0)
        assert len(objs) == 2

    def test_no_objects_below_threshold(self):
        assert find_objects(np.zeros((8, 8)), 1.0) == []

    def test_center_of_mass(self):
        f = blob(32, 32, 10, 20)
        (obj,) = find_objects(f, 3.0)
        assert obj.center_y == pytest.approx(10.0, abs=0.5)
        assert obj.center_x == pytest.approx(20.0, abs=0.5)

    def test_mass_and_peak(self):
        f = blob(16, 16, 8, 8, amp=10.0)
        (obj,) = find_objects(f, 3.0)
        assert obj.peak == pytest.approx(10.0, rel=0.01)
        assert obj.mass > obj.peak


class TestSAL:
    def test_perfect_forecast_zero(self):
        ob = blob(32, 32, 16, 16)
        s = sal(ob, ob, threshold=3.0)
        assert s["S"] == pytest.approx(0.0, abs=1e-9)
        assert s["A"] == pytest.approx(0.0, abs=1e-9)
        assert s["L"] == pytest.approx(0.0, abs=1e-9)

    def test_amplitude_bias_detected(self):
        ob = blob(32, 32, 16, 16)
        s = sal(2.0 * ob, ob, threshold=3.0)
        assert s["A"] > 0.3

    def test_displacement_in_L_only(self):
        ob = blob(32, 32, 16, 10)
        fc = blob(32, 32, 16, 22)
        s = sal(fc, ob, threshold=3.0)
        assert s["L"] > 0.1
        assert abs(s["A"]) < 0.05  # same total rain

    def test_structure_peakedness(self):
        # broad flat forecast vs peaked observation -> S > 0
        ob = blob(32, 32, 16, 16, r=2.0, amp=20.0)
        fc = blob(32, 32, 16, 16, r=6.0, amp=4.0)
        s = sal(fc, ob, threshold=1.0)
        assert s["S"] > 0.3

    def test_bounds(self):
        rng = np.random.default_rng(0)
        fc = np.maximum(rng.normal(0, 3, (24, 24)), 0)
        ob = np.maximum(rng.normal(0, 3, (24, 24)), 0)
        s = sal(fc, ob, threshold=2.0)
        assert -2.0 <= s["A"] <= 2.0
        if np.isfinite(s["S"]):
            assert -2.0 <= s["S"] <= 2.0
        assert s["L"] >= 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sal(np.zeros((4, 4)), np.zeros((5, 5)), threshold=1.0)


class TestCatalog:
    def make_entry(self, cycle, t0=0.0):
        return CatalogEntry(
            cycle=cycle,
            t_obs=t0 + cycle * 30.0,
            t_published=t0 + cycle * 30.0 + 145.0,
            valid_time=t0 + cycle * 30.0 + 1800.0,
            max_dbz=42.0,
            max_rain_mmh=35.0,
            files={"mapview": f"mapview_{cycle:06d}.png"},
        )

    def test_publish_and_index(self, tmp_path):
        cat = ProductCatalog(tmp_path)
        for c in range(5):
            cat.publish(self.make_entry(c))
        data = json.loads(cat.index_path.read_text())
        assert data["schema_version"] == SCHEMA_VERSION
        assert len(data["entries"]) == 5
        assert cat.latest().cycle == 4

    def test_monotonic_cycles_enforced(self, tmp_path):
        cat = ProductCatalog(tmp_path)
        cat.publish(self.make_entry(3))
        with pytest.raises(ValueError):
            cat.publish(self.make_entry(3))

    def test_retention(self, tmp_path):
        cat = ProductCatalog(tmp_path, retention=3)
        for c in range(10):
            cat.publish(self.make_entry(c))
        assert len(cat.entries) == 3
        assert cat.entries[0].cycle == 7

    def test_load_roundtrip(self, tmp_path):
        cat = ProductCatalog(tmp_path)
        for c in range(4):
            cat.publish(self.make_entry(c))
        cat2 = ProductCatalog.load(tmp_path)
        assert [e.cycle for e in cat2.entries] == [0, 1, 2, 3]
        assert cat2.latest().time_to_solution == pytest.approx(145.0)

    def test_between(self, tmp_path):
        cat = ProductCatalog(tmp_path)
        for c in range(10):
            cat.publish(self.make_entry(c))
        sel = cat.between(60.0, 150.0)
        assert [e.cycle for e in sel] == [2, 3, 4]

    def test_level_tiles(self, tmp_path, developed_nature):
        import hashlib

        from repro.radar.reflectivity import dbz_from_state

        cat = ProductCatalog(tmp_path)
        dbz = dbz_from_state(developed_nature)
        paths = cat.export_level_tiles(
            dbz, developed_nature.grid.z_c, cycle=1, every=4
        )
        manifest = json.loads(open(paths["manifest"]).read())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert len(manifest["levels"]) == int(np.ceil(dbz.shape[0] / 4))
        for lv in manifest["levels"]:
            tile = tmp_path / f"tiles_000001/{lv['file']}"
            assert tile.exists()
            assert lv["height_m"] >= 0
            # the manifest hash is the tile's actual content hash
            assert lv["sha256"] == hashlib.sha256(tile.read_bytes()).hexdigest()


class TestCatalogWireSchema:
    """Versioned-index compat: old readers' data keeps loading."""

    FIXTURES = __import__("pathlib").Path(__file__).parent / "fixtures" / "catalog"

    def test_v1_golden_fixture_loads(self, tmp_path):
        (tmp_path / "catalog.json").write_text(
            (self.FIXTURES / "catalog_v1.json").read_text()
        )
        cat = ProductCatalog.load(tmp_path)
        assert [e.cycle for e in cat.entries] == [0, 1]
        assert cat.latest().max_rain_mmh == 51.0
        # fields v1 never wrote get their defaults
        assert cat.latest().hashes == {}

    def test_future_version_fixture_loads_unknown_fields_dropped(self, tmp_path):
        (tmp_path / "catalog.json").write_text(
            (self.FIXTURES / "catalog_v9_future.json").read_text()
        )
        cat = ProductCatalog.load(tmp_path)
        assert [e.cycle for e in cat.entries] == [7]
        e = cat.latest()
        assert e.hashes["mapview"].startswith("0123")
        assert not hasattr(e, "embargo_until")

    def test_roundtrip_is_current_version(self, tmp_path):
        cat = ProductCatalog(tmp_path)
        cat.publish(CatalogEntry(
            cycle=0, t_obs=0.0, t_published=145.0, valid_time=1800.0,
            max_dbz=40.0, max_rain_mmh=30.0,
            hashes={"mapview": "ab" * 32},
        ))
        cat2 = ProductCatalog.load(tmp_path)
        assert cat2.entries == cat.entries
        assert json.loads(cat.index_path.read_text())["schema_version"] \
            == SCHEMA_VERSION

    def test_truncated_index_is_an_explicit_error(self, tmp_path):
        cat = ProductCatalog(tmp_path)
        cat.publish(CatalogEntry(
            cycle=0, t_obs=0.0, t_published=145.0, valid_time=1800.0,
            max_dbz=40.0, max_rain_mmh=30.0,
        ))
        full = cat.index_path.read_text()
        cat.index_path.write_text(full[: len(full) // 2])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            ProductCatalog.load(tmp_path)

    def test_unrecognized_layout_is_an_explicit_error(self, tmp_path):
        tmp_path.joinpath("catalog.json").write_text('"just a string"')
        with pytest.raises(ValueError, match="unrecognized layout"):
            ProductCatalog.load(tmp_path)


class TestCatalogEdgeCases:
    def make_entry(self, cycle):
        return CatalogEntry(
            cycle=cycle, t_obs=cycle * 30.0, t_published=cycle * 30.0 + 145.0,
            valid_time=cycle * 30.0 + 1800.0, max_dbz=42.0, max_rain_mmh=35.0,
        )

    def test_retention_evicts_oldest_first_in_order(self, tmp_path):
        cat = ProductCatalog(tmp_path, retention=4)
        for c in range(11):
            cat.publish(self.make_entry(c))
            kept = [e.cycle for e in cat.entries]
            # always the newest window, always ascending
            assert kept == sorted(kept)
            assert kept == list(range(max(0, c - 3), c + 1))
        # the on-disk index matches the in-memory window
        cat2 = ProductCatalog.load(tmp_path)
        assert [e.cycle for e in cat2.entries] == [7, 8, 9, 10]

    def test_between_is_half_open(self, tmp_path):
        cat = ProductCatalog(tmp_path)
        for c in range(5):
            cat.publish(self.make_entry(c))  # t_obs = 0, 30, 60, 90, 120
        assert [e.cycle for e in cat.between(30.0, 90.0)] == [1, 2]
        assert [e.cycle for e in cat.between(30.0, 90.000001)] == [1, 2, 3]
        assert cat.between(31.0, 31.0) == []
        assert [e.cycle for e in cat.between(-1e9, 1e9)] == [0, 1, 2, 3, 4]

    def test_concurrent_publish_while_read(self, tmp_path):
        """Readers never observe a torn index during publishes."""
        import threading

        cat = ProductCatalog(tmp_path, retention=50)
        cat.publish(self.make_entry(0))
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    snap = ProductCatalog.load(tmp_path)
                    cycles = [e.cycle for e in snap.entries]
                    assert cycles == sorted(cycles) and cycles
                except Exception as e:  # noqa: BLE001 - collected for the assert
                    failures.append(repr(e))
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for c in range(1, 120):
                cat.publish(self.make_entry(c))
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not failures, failures
