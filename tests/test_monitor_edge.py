"""Edge cases of the operational monitor and outage detector.

The streaming monitor ingests whatever the campaign (or a real log)
produces — including pathological streams: nothing at all, nothing but
failures, a single record, streaks that sit exactly on the alert
threshold. None of these may crash or mis-count.
"""

import math

import numpy as np
import pytest

from repro.workflow.monitor import WorkflowMonitor, detect_outages
from repro.workflow.realtime import CycleRecord


def rec(cycle, *, ok=True, tts=100.0, degraded=False, reason=""):
    """A synthetic cycle record on the 30-s cadence."""
    t_obs = cycle * 30.0
    if not ok:
        return CycleRecord(
            cycle=cycle, t_obs=t_obs, ok=False, skipped_reason=reason or "transfer-failed"
        )
    return CycleRecord(
        cycle=cycle, t_obs=t_obs, ok=True,
        t_file=t_obs + 3.0, t_transferred=t_obs + 6.0,
        t_analysis=t_obs + 20.0, t_product=t_obs + tts,
        degraded=degraded,
    )


class TestEmptyStream:
    def test_statistics_defined_before_any_record(self):
        m = WorkflowMonitor()
        assert m.availability() == 0.0
        assert m.deadline_fraction() == 0.0
        assert math.isnan(m.median_tts())
        assert m.degraded_fraction() == 0.0
        assert math.isnan(m.mean_time_to_recover())
        assert m.alerts == []
        assert "availability" in m.summary()

    def test_detect_outages_empty(self):
        assert detect_outages([]) == []


class TestAllFailedStream:
    def test_counts_and_single_streak_alert(self):
        m = WorkflowMonitor(streak_threshold=3)
        for c in range(10):
            m.observe(rec(c, ok=False))
        assert m.availability() == 0.0
        assert m.deadline_fraction() == 0.0
        assert math.isnan(m.median_tts())
        # the streak alert fires once, at the threshold crossing,
        # not once per subsequent failed cycle
        streaks = [a for a in m.alerts if a.kind == "failure-streak"]
        assert len(streaks) == 1
        assert streaks[0].t == rec(2).t_obs

    def test_no_recovery_recorded_without_success(self):
        m = WorkflowMonitor()
        for c in range(5):
            m.observe(rec(c, ok=False))
        assert m.recovery_times == []
        assert math.isnan(m.mean_time_to_recover())

    def test_open_ended_outage_window(self):
        records = [rec(c, ok=False) for c in range(6)]
        windows = detect_outages(records, min_cycles=4)
        assert len(windows) == 1
        start, end = windows[0]
        assert start == 0.0
        assert end == records[-1].t_obs + 30.0


class TestSingleRecordStream:
    def test_one_ok_record(self):
        m = WorkflowMonitor()
        alerts = m.observe(rec(0, tts=100.0))
        assert alerts == []
        assert m.availability() == 1.0
        assert m.deadline_fraction() == 1.0
        assert m.median_tts() == pytest.approx(100.0)

    def test_one_late_record_alerts(self):
        m = WorkflowMonitor(deadline_s=180.0)
        alerts = m.observe(rec(0, tts=400.0))
        assert [a.kind for a in alerts] == ["late-product"]

    def test_one_failed_record(self):
        m = WorkflowMonitor(streak_threshold=3)
        alerts = m.observe(rec(0, ok=False))
        assert alerts == []
        assert m.availability() == 0.0

    def test_single_failure_is_not_an_outage(self):
        assert detect_outages([rec(0, ok=False)], min_cycles=4) == []


class TestStreakBoundaries:
    def test_threshold_minus_one_no_alert(self):
        m = WorkflowMonitor(streak_threshold=3)
        m.observe(rec(0, ok=False))
        m.observe(rec(1, ok=False))
        m.observe(rec(2))  # recovery just before the threshold
        assert [a for a in m.alerts if a.kind == "failure-streak"] == []

    def test_exactly_threshold_alerts(self):
        m = WorkflowMonitor(streak_threshold=3)
        for c in range(3):
            m.observe(rec(c, ok=False))
        assert len([a for a in m.alerts if a.kind == "failure-streak"]) == 1

    def test_recovery_resets_streak_counter(self):
        m = WorkflowMonitor(streak_threshold=3)
        for c in range(3):
            m.observe(rec(c, ok=False))
        m.observe(rec(3))
        for c in range(4, 7):
            m.observe(rec(c, ok=False))
        # a second full streak after recovery fires a second alert
        assert len([a for a in m.alerts if a.kind == "failure-streak"]) == 2

    def test_recovery_time_measured_from_episode_start(self):
        m = WorkflowMonitor()
        m.observe(rec(0, ok=False))
        m.observe(rec(1, ok=False))
        m.observe(rec(2))
        assert m.recovery_times == [pytest.approx(60.0)]
        assert m.mean_time_to_recover() == pytest.approx(60.0)

    def test_outage_exactly_min_cycles(self):
        records = (
            [rec(0)]
            + [rec(c, ok=False) for c in range(1, 5)]  # exactly 4 failures
            + [rec(5)]
        )
        assert detect_outages(records, min_cycles=4) == [(30.0, 150.0)]
        assert detect_outages(records, min_cycles=5) == []


class TestDegradedAndTTSDegradation:
    def test_degraded_fraction_counts_stream_not_window(self):
        m = WorkflowMonitor(window=4)
        for c in range(8):
            m.observe(rec(c, degraded=(c < 4)))
        # the first four degraded records have left the rolling window
        # but still count in the cumulative fraction
        assert m.degraded_fraction() == pytest.approx(0.5)

    def test_tts_degradation_fires_once_per_episode(self):
        m = WorkflowMonitor(window=4, degradation_fraction=0.8, deadline_s=180.0)
        for c in range(8):
            m.observe(rec(c, tts=400.0))
        degr = [a for a in m.alerts if a.kind == "tts-degradation"]
        assert len(degr) == 1

    def test_legacy_records_without_new_fields(self):
        # a monitor replaying an old log (records lacking degraded/fault
        # semantics) must not miscount
        m = WorkflowMonitor()
        m.observe(rec(0))
        assert m.n_degraded == 0


class TestMonitorOverCampaign:
    def test_monitor_agrees_with_report(self):
        from repro.resilience import FaultCampaign

        camp = FaultCampaign(seed=31)
        camp.run(400)
        m = WorkflowMonitor(window=10_000)
        for r in camp.workflow.records:
            m.observe(r)
        rep = camp.report()
        assert m.availability() == pytest.approx(rep.availability)
        assert len(m.recovery_times) == rep.n_recoveries
        assert np.isclose(
            m.mean_time_to_recover(), rep.mean_time_to_recover_s, equal_nan=True
        )
        # monitor normalizes degraded by all cycles, the report by
        # produced cycles — reconcile the two conventions
        assert m.n_degraded == rep.n_degraded
