"""The consolidated public API surface (repro.api)."""

import subprocess
import sys

import pytest

import repro
import repro.api as api


class TestApiSurface:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_star_import_exposes_documented_surface(self):
        ns = {}
        exec("from repro.api import *", ns)
        exported = {k for k in ns if not k.startswith("_")}
        assert exported == set(api.__all__)

    def test_core_entry_points_present(self):
        expected = {
            "BDASystem", "DACycler", "EnsembleState", "ExecutionConfig",
            "Telemetry", "FaultCampaign", "ScaleConfig", "LETKFConfig",
            "RadarConfig", "WorkflowConfig", "RealtimeWorkflow",
            "WorkflowMonitor",
        }
        assert expected <= set(api.__all__)

    def test_fleet_surface_present(self):
        expected = {
            "FleetScheduler", "FleetConfig", "FleetReport", "DomainTenant",
            "ComputePool",
        }
        assert expected <= set(api.__all__)

    def test_reexports_are_the_implementation_objects(self):
        from repro.core.bda import BDASystem
        from repro.fleet import DomainTenant, FleetScheduler
        from repro.telemetry import Telemetry

        assert api.BDASystem is BDASystem
        assert api.Telemetry is Telemetry
        assert api.FleetScheduler is FleetScheduler
        assert api.DomainTenant is DomainTenant

    def test_unknown_name_raises_attribute_error(self):
        with pytest.raises(AttributeError):
            api.does_not_exist

    def test_dir_lists_public_names(self):
        listing = dir(api)
        assert "BDASystem" in listing and "Telemetry" in listing


class TestPackageDelegation:
    def test_package_delegates_to_api(self):
        assert repro.BDASystem is api.BDASystem
        assert repro.ExecutionConfig is api.ExecutionConfig

    def test_package_unknown_name(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing

    def test_version_present(self):
        assert isinstance(repro.__version__, str)

    def test_config_import_stays_light(self):
        """Reaching a config class must not drag in the heavy model code."""
        code = (
            "import sys; from repro.api import ScaleConfig; "
            "assert 'repro.model.model' not in sys.modules, 'model imported'; "
            "assert 'scipy' not in sys.modules, 'scipy imported'"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
