"""The versioned public API surface (repro.api + its namespaces)."""

import subprocess
import sys
import warnings
from importlib import import_module

import pytest

import repro
import repro.api as api

NAMESPACES = ("core", "config", "telemetry", "workflow", "fleet",
              "ingest", "serving")


def _namespace(name):
    return import_module(f"repro.api.{name}")


class TestNamespaces:
    def test_api_version_present(self):
        assert isinstance(api.__api_version__, str)
        assert api.__api_version__.split(".")[0] == "2"

    def test_every_namespace_importable(self):
        for ns in NAMESPACES:
            mod = _namespace(ns)
            assert mod.__all__, f"namespace {ns} exports nothing"

    def test_namespace_attribute_access_on_api(self):
        assert api.core.BDASystem.__name__ == "BDASystem"
        assert api.serving.ServingStore.__name__ == "ServingStore"

    def test_every_public_symbol_has_docstring_and_one_namespace(self):
        """The satellite contract: documented, and owned exactly once."""
        seen = {}
        for ns in NAMESPACES:
            mod = _namespace(ns)
            for name in mod.__all__:
                assert name not in seen, (
                    f"{name} exported by both {seen[name]} and {ns}"
                )
                seen[name] = ns
                obj = getattr(mod, name)
                assert getattr(obj, "__doc__", None), (
                    f"repro.api.{ns}.{name} has no docstring"
                )
        # the whole legacy flat surface is owned by some namespace
        assert set(api.__all__) <= set(seen)

    def test_namespace_reexports_are_the_implementation_objects(self):
        from repro.core.backends import ProcessesBackend
        from repro.core.bda import BDASystem
        from repro.fleet import FleetScheduler
        from repro.model.shm import SharedArena
        from repro.serving import ServingStore
        from repro.telemetry import Telemetry

        assert api.core.BDASystem is BDASystem
        assert api.core.ProcessesBackend is ProcessesBackend
        assert api.core.SharedArena is SharedArena
        assert api.telemetry.Telemetry is Telemetry
        assert api.fleet.FleetScheduler is FleetScheduler
        assert api.serving.ServingStore is ServingStore

    def test_execution_knobs_reachable_through_config_namespace(self):
        """--workers / --precision surface: the spec fields are public."""
        cfg = api.config.ExecutionConfig(
            backend="processes", workers=2, precision="double"
        )
        assert cfg.workers == 2
        assert cfg.precision_dtype().itemsize == 8

    def test_namespace_unknown_name(self):
        with pytest.raises(AttributeError):
            api.core.not_a_thing


class TestLegacyFlatSurface:
    def test_flat_names_resolve_with_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="repro.api.core"):
            assert api.BDASystem is not None

    def test_flat_warning_fires_every_access(self):
        """The warning must not be cached away after the first access."""
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            api.WorkflowConfig
            api.WorkflowConfig
        assert len(w) == 2
        assert all(issubclass(x.category, DeprecationWarning) for x in w)

    def test_flat_names_are_the_namespace_objects(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert api.Telemetry is api.telemetry.Telemetry
            assert api.FleetScheduler is api.fleet.FleetScheduler

    def test_star_import_exposes_documented_surface(self):
        ns = {}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            exec("from repro.api import *", ns)
        exported = {k for k in ns if not k.startswith("_")}
        assert set(api.__all__) <= exported

    def test_core_entry_points_present(self):
        expected = {
            "BDASystem", "DACycler", "EnsembleState", "ExecutionConfig",
            "Telemetry", "FaultCampaign", "ScaleConfig", "LETKFConfig",
            "RadarConfig", "WorkflowConfig", "RealtimeWorkflow",
            "WorkflowMonitor", "FleetScheduler", "FleetConfig",
            "FleetReport", "DomainTenant", "ComputePool",
        }
        assert expected <= set(api.__all__)

    def test_resolve_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert api.resolve("BDASystem").__name__ == "BDASystem"

    def test_unknown_name_raises_attribute_error(self):
        with pytest.raises(AttributeError):
            api.does_not_exist
        with pytest.raises(AttributeError):
            api.resolve("does_not_exist")

    def test_dir_lists_flat_names_and_namespaces(self):
        listing = dir(api)
        assert "BDASystem" in listing and "Telemetry" in listing
        for ns in NAMESPACES:
            assert ns in listing


class TestPackageDelegation:
    def test_package_delegates_to_api_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            bda = repro.BDASystem
            cfg = repro.ExecutionConfig
        assert bda is api.resolve("BDASystem")
        assert cfg is api.resolve("ExecutionConfig")

    def test_from_repro_import_api_works(self):
        # guards the lazy-delegation recursion (from repro import api
        # probes repro.__getattr__("api") through _handle_fromlist)
        proc = subprocess.run(
            [sys.executable, "-c", "from repro import api; api.__api_version__"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_package_unknown_name(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing

    def test_version_present(self):
        assert isinstance(repro.__version__, str)

    def test_config_import_stays_light(self):
        """Reaching a config class must not drag in the heavy model code."""
        code = (
            "import sys; from repro.api.config import ScaleConfig; "
            "assert 'repro.model.model' not in sys.modules, 'model imported'; "
            "assert 'scipy' not in sys.modules, 'scipy imported'"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
