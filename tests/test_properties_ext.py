"""Property-based tests over the communication and verification layers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.comm.datatransfer import ParallelTransport, ensemble_transpose
from repro.comm.halo import DomainDecomposition, gather_field, scatter_field
from repro.comm.tofu import TofuNetwork
from repro.radar.attenuation import attenuate_scan, correct_attenuation_kdp
from repro.radar.dualpol import KDP_COEFF
from repro.verify.fss import fss
from repro.workflow.monitor import detect_outages
from repro.workflow.realtime import CycleRecord

settings.register_profile("repro-ext", max_examples=30, deadline=None)
settings.load_profile("repro-ext")


class TestTransposeProperties:
    @given(
        st.integers(1, 12),  # members
        st.integers(1, 60),  # points
        st.integers(1, 6),  # ranks
        st.integers(0, 2**31 - 1),
    )
    def test_shards_partition_exactly(self, m, npoints, n_ranks, seed):
        rng = np.random.default_rng(seed)
        ens = rng.normal(size=(m, npoints)).astype(np.float32)
        shards = ensemble_transpose(ens, n_ranks)
        assert sum(s.shape[1] for s in shards) == npoints
        assert np.array_equal(np.concatenate(shards, axis=1), ens)

    @given(st.integers(1, 8), st.integers(1, 5), st.integers(0, 2**31 - 1))
    def test_parallel_transport_lossless(self, m, n_ranks, seed):
        rng = np.random.default_rng(seed)
        ens = rng.normal(size=(m, 24)).astype(np.float32)
        shards, report = ParallelTransport().transpose(ens, n_ranks)
        assert np.array_equal(np.concatenate(shards, axis=1), ens)
        assert report.simulated_seconds >= 0.0


class TestHaloProperties:
    @given(
        st.sampled_from([(1, 1), (1, 2), (2, 2), (2, 4)]),
        st.integers(1, 2),
        st.integers(0, 2**31 - 1),
    )
    def test_stencil_invariance(self, ranks, halo, seed):
        py, px = ranks
        ny, nx = 8 * py, 8 * px
        d = DomainDecomposition(ny, nx, py, px, halo=halo)
        rng = np.random.default_rng(seed)
        f = rng.normal(size=(ny, nx))
        tiles = scatter_field(d, f)
        d.exchange_halos(tiles)

        def lap(a):
            return (
                np.roll(a, -1, -1) + np.roll(a, 1, -1)
                + np.roll(a, -1, -2) + np.roll(a, 1, -2) - 4 * a
            )

        out = gather_field(d, [lap(t) for t in tiles])
        assert np.allclose(out, lap(f), atol=1e-12)


class TestTofuProperties:
    @given(st.integers(0, 2**31 - 1))
    def test_roundtrip_and_metric(self, seed):
        net = TofuNetwork(nx=4, ny=3, nz=2)
        rng = np.random.default_rng(seed)
        a, b, c = (int(x) for x in rng.integers(0, net.n_nodes, 3))
        # id <-> coordinate roundtrip
        assert net.node_id(net.coordinates(a)) == a
        # metric axioms: symmetry, identity, triangle inequality
        assert net.hops(a, a) == 0
        assert net.hops(a, b) == net.hops(b, a)
        assert net.hops(a, c) <= net.hops(a, b) + net.hops(b, c)


class TestAttenuationProperties:
    @given(
        hnp.arrays(np.float64, (2, 16), elements=st.floats(0, 5e-3)),
        st.integers(0, 2**31 - 1),
    )
    def test_kdp_correction_inverts(self, rain, seed):
        dbz = np.full((2, 16), 35.0)
        att = attenuate_scan(dbz, rain, 500.0, floor_dbz=-1e9)
        rec = correct_attenuation_kdp(att, KDP_COEFF * rain, 500.0)
        assert np.allclose(rec, dbz, atol=1e-8)

    @given(hnp.arrays(np.float64, (1, 12), elements=st.floats(0, 5e-3)))
    def test_attenuation_never_amplifies(self, rain):
        dbz = np.full((1, 12), 30.0)
        att = attenuate_scan(dbz, rain, 500.0)
        assert np.all(att <= 30.0 + 1e-12)


class TestFSSProperties:
    @given(
        hnp.arrays(np.float64, (10, 10), elements=st.floats(0, 50)),
        st.floats(5.0, 45.0),
        st.integers(0, 4),
    )
    def test_bounds_and_perfection(self, field, thr, w):
        s_perfect = fss(field, field, thr, w)
        assert np.isnan(s_perfect) or s_perfect == 1.0

    @given(
        hnp.arrays(np.float64, (10, 10), elements=st.floats(0, 50)),
        hnp.arrays(np.float64, (10, 10), elements=st.floats(0, 50)),
        st.floats(5.0, 45.0),
    )
    def test_range(self, fc, ob, thr):
        s = fss(fc, ob, thr, 2)
        assert np.isnan(s) or 0.0 <= s <= 1.0


class TestOutageDetectionProperties:
    @given(
        st.lists(st.booleans(), min_size=10, max_size=200),
        st.integers(1, 6),
    )
    def test_windows_cover_only_failures(self, ok_flags, min_cycles):
        recs = [
            CycleRecord(cycle=i, t_obs=i * 30.0, ok=ok,
                        t_product=i * 30.0 + 150.0 if ok else 0.0)
            for i, ok in enumerate(ok_flags)
        ]
        windows = detect_outages(recs, min_cycles=min_cycles)
        for start, end in windows:
            assert end > start
            covered = [r for r in recs if start <= r.t_obs < end]
            assert covered and not any(r.ok for r in covered)
            assert len(covered) >= min_cycles
