"""Property-based tests (hypothesis) on the core data structures.

Each property is an invariant the paper's system relies on: orthogonal
transforms in the eigensolver, conservation in the advection operator,
idempotence/bounds in the verification scores, lossless protocol and
file-format round-trips.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.eigen import eigh_kedv
from repro.jitdt.protocol import chunk_payload, reassemble
from repro.letkf.core import letkf_transform
from repro.letkf.localization import gaspari_cohn
from repro.verify.scores import contingency, threat_score
from repro.viz.png import encode_png

settings.register_profile("repro", max_examples=40, deadline=None)
settings.load_profile("repro")


finite_f = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestGaspariCohnProperties:
    @given(st.floats(min_value=0.0, max_value=10.0))
    def test_bounded(self, r):
        w = gaspari_cohn(r)
        assert 0.0 <= w <= 1.0

    @given(st.floats(min_value=0.0, max_value=5.0), st.floats(min_value=0.0, max_value=5.0))
    def test_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert gaspari_cohn(lo) >= gaspari_cohn(hi) - 1e-12

    @given(st.floats(min_value=2.0, max_value=100.0))
    def test_compact_support(self, r):
        assert gaspari_cohn(r) == 0.0


class TestEigenProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 4), st.integers(2, 8)).map(lambda t: (t[0], t[1], t[1])),
            elements=finite_f,
        )
    )
    def test_eigh_kedv_invariants(self, raw):
        A = (raw + np.swapaxes(raw, 1, 2)) * 0.5
        w, V = eigh_kedv(A)
        k = A.shape[-1]
        anorm = max(np.abs(A).sum(axis=2).max(), 1.0)
        # ascending eigenvalues
        assert np.all(np.diff(w, axis=1) >= -1e-9 * anorm)
        # orthonormal vectors
        gram = np.swapaxes(V, 1, 2) @ V
        assert np.allclose(gram, np.eye(k), atol=1e-7 * max(anorm, 1.0))
        # reconstruction
        rec = V @ (w[:, :, None] * np.swapaxes(V, 1, 2))
        assert np.allclose(rec, A, atol=1e-8 * anorm)


class TestLETKFProperties:
    @given(
        st.integers(3, 10),  # members
        st.integers(1, 8),  # obs
        st.integers(1, 5),  # grid points
        st.integers(0, 2**31 - 1),
    )
    def test_transform_shape_and_mean_preservation(self, m, no, G, seed):
        rng = np.random.default_rng(seed)
        dYb = rng.normal(size=(G, no, m))
        dYb -= dYb.mean(axis=2, keepdims=True)
        d = rng.normal(size=(G, no))
        rinv = rng.uniform(0.0, 2.0, size=(G, no))
        W = letkf_transform(dYb, d, rinv)
        assert W.shape == (G, m, m)
        assert np.all(np.isfinite(W))
        # zero-mean perturbations map to zero-mean perturbations
        pert = rng.normal(size=(G, 2, m))
        pert -= pert.mean(axis=2, keepdims=True)
        xa = np.einsum("gvm,gmn->gvn", pert, W)
        xa_mean_removed = xa - xa.mean(axis=2, keepdims=True)
        # spread cannot exceed prior spread (analysis contracts)
        assert (
            np.sum(xa_mean_removed**2) <= np.sum(pert**2) * (1 + 1e-6)
        )

    @given(st.integers(2, 8), st.integers(1, 5), st.integers(0, 2**31 - 1))
    def test_zero_weight_obs_is_identity(self, m, no, seed):
        rng = np.random.default_rng(seed)
        dYb = rng.normal(size=(2, no, m))
        d = rng.normal(size=(2, no))
        W = letkf_transform(dYb, d, np.zeros((2, no)))
        assert np.allclose(W, np.eye(m)[None], atol=1e-10)


class TestScoreProperties:
    @given(
        hnp.arrays(np.float64, (6, 6), elements=st.floats(0, 60)),
        hnp.arrays(np.float64, (6, 6), elements=st.floats(0, 60)),
        st.floats(5.0, 55.0),
    )
    def test_threat_score_bounds(self, fc, ob, thr):
        t = contingency(fc, ob, thr)
        ts = threat_score(t)
        assert np.isnan(ts) or 0.0 <= ts <= 1.0

    @given(hnp.arrays(np.float64, (5, 5), elements=st.floats(0, 60)), st.floats(5.0, 55.0))
    def test_perfect_forecast_perfect_score(self, ob, thr):
        t = contingency(ob, ob, thr)
        ts = threat_score(t)
        assert np.isnan(ts) or ts == 1.0

    @given(
        hnp.arrays(np.float64, (5, 5), elements=st.floats(0, 60)),
        hnp.arrays(np.float64, (5, 5), elements=st.floats(0, 60)),
        st.floats(5.0, 55.0),
    )
    def test_contingency_partitions(self, fc, ob, thr):
        t = contingency(fc, ob, thr)
        assert t.hits + t.misses + t.false_alarms + t.correct_negatives == 25


class TestProtocolProperties:
    @given(st.binary(max_size=50_000), st.integers(1, 8192))
    def test_roundtrip_any_payload(self, payload, chunk):
        assert reassemble(list(chunk_payload(payload, chunk))) == payload

    @given(st.binary(min_size=1, max_size=10_000), st.integers(1, 4096))
    def test_shuffled_chunks_reassemble(self, payload, chunk):
        chunks = list(chunk_payload(payload, chunk))
        rng = np.random.default_rng(0)
        rng.shuffle(chunks)
        assert reassemble(chunks) == payload


class TestPNGProperties:
    @given(
        hnp.arrays(
            np.uint8,
            st.tuples(st.integers(1, 12), st.integers(1, 12), st.just(3)),
        )
    )
    def test_png_decodable(self, img):
        import struct
        import zlib

        data = encode_png(img)
        assert data[:8] == b"\x89PNG\r\n\x1a\n"
        # find and decompress IDAT, verify pixels
        off = 8
        idat = None
        while off < len(data):
            (length,) = struct.unpack(">I", data[off : off + 4])
            tag = data[off + 4 : off + 8]
            if tag == b"IDAT":
                idat = data[off + 8 : off + 8 + length]
            off += 12 + length
        raw = zlib.decompress(idat)
        h, w, _ = img.shape
        rows = np.frombuffer(raw, np.uint8).reshape(h, 1 + w * 3)
        assert np.array_equal(rows[:, 1:].reshape(img.shape), img)


class TestAdvectionProperties:
    @given(st.integers(0, 2**31 - 1))
    def test_horizontal_conservation(self, seed):
        from repro.config import reduced_inner_domain
        from repro.grid import Grid
        from repro.model.advection import flux_divergence

        grid = Grid(reduced_inner_domain(nx=8, nz=4), dtype=np.float64)
        rng = np.random.default_rng(seed)
        rhou = rng.normal(size=grid.shape)
        rhov = rng.normal(size=grid.shape)
        rhow = np.zeros(grid.shape_w)
        s = rng.normal(size=grid.shape)
        tend = flux_divergence(grid, rhou, rhov, rhow, s)
        total = abs(np.sum(tend))
        scale = np.sum(np.abs(tend)) + 1e-30
        assert total < 1e-9 * scale + 1e-12


class TestMicrophysicsProperties:
    @given(st.integers(0, 2**31 - 1), st.floats(0.5, 1.5))
    @settings(max_examples=10)
    def test_total_water_closed(self, seed, supersat):
        from repro.config import ScaleConfig
        from repro.model import ScaleRM, convective_sounding
        from repro.model.microphysics import MicrophysicsSM6

        model = ScaleRM(ScaleConfig().reduced(nx=8, nz=8), convective_sounding(), with_physics=False)
        mp = MicrophysicsSM6(model.grid, model.reference)
        rng = np.random.default_rng(seed)
        st_ = model.initial_state()
        st_.fields["qv"] *= supersat
        for q in ("qc", "qr", "qi", "qs", "qg"):
            st_.fields[q][...] = rng.uniform(0, 1e-3, model.grid.shape).astype(np.float32)
        d = mp.tendencies(st_, dt=10.0)
        total = sum(d[q] for q in ("qv", "qc", "qr", "qi", "qs", "qg"))
        assert np.allclose(total, 0.0, atol=1e-10)
