"""Skill scores, persistence baseline, rain-area climatology."""

import numpy as np
import pytest

from repro.verify import (
    ContingencyTable,
    PersistenceForecast,
    RainAreaClimatology,
    bias_score,
    contingency,
    equitable_threat_score,
    false_alarm_ratio,
    probability_of_detection,
    rain_area_km2,
    rmse,
    threat_score,
)


class TestContingency:
    def test_perfect_forecast(self):
        obs = np.array([[0.0, 35.0], [45.0, 10.0]])
        t = contingency(obs, obs, threshold=30.0)
        assert t.hits == 2 and t.misses == 0 and t.false_alarms == 0
        assert threat_score(t) == 1.0

    def test_total_miss(self):
        fc = np.zeros((4, 4))
        ob = np.full((4, 4), 40.0)
        t = contingency(fc, ob, threshold=30.0)
        assert t.hits == 0 and t.misses == 16
        assert threat_score(t) == 0.0

    def test_counts_partition(self):
        rng = np.random.default_rng(0)
        fc = rng.uniform(0, 60, (10, 10))
        ob = rng.uniform(0, 60, (10, 10))
        t = contingency(fc, ob, 30.0)
        assert t.n == 100

    def test_mask_excludes_no_data(self):
        fc = np.full((2, 2), 40.0)
        ob = np.full((2, 2), 40.0)
        mask = np.array([[True, False], [False, False]])
        t = contingency(fc, ob, 30.0, mask=mask)
        assert t.n == 1

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            contingency(np.zeros((2, 2)), np.zeros((3, 3)), 30.0)

    def test_table_addition(self):
        t1 = ContingencyTable(1, 2, 3, 4)
        t2 = ContingencyTable(10, 20, 30, 40)
        s = t1 + t2
        assert (s.hits, s.misses, s.false_alarms, s.correct_negatives) == (11, 22, 33, 44)


class TestScores:
    def test_threat_score_nan_when_no_events(self):
        t = ContingencyTable(0, 0, 0, 100)
        assert np.isnan(threat_score(t))

    def test_pod_far_bounds(self):
        t = ContingencyTable(6, 2, 3, 89)
        assert 0 <= probability_of_detection(t) <= 1
        assert 0 <= false_alarm_ratio(t) <= 1

    def test_bias_overforecast(self):
        t = ContingencyTable(5, 0, 5, 90)
        assert bias_score(t) == 2.0

    def test_ets_below_ts(self):
        t = ContingencyTable(30, 10, 10, 50)
        assert equitable_threat_score(t) < threat_score(t)

    def test_rmse_basic(self):
        assert rmse(np.array([1.0, 3.0]), np.array([0.0, 0.0])) == pytest.approx(
            np.sqrt(5.0)
        )

    def test_rmse_empty_mask_nan(self):
        assert np.isnan(rmse(np.zeros(3), np.zeros(3), mask=np.zeros(3, bool)))


class TestPersistence:
    def test_frozen_at_all_leads(self):
        obs = np.random.default_rng(0).uniform(0, 50, (8, 8))
        p = PersistenceForecast(obs)
        assert np.array_equal(p.at_lead(0.0), obs)
        assert np.array_equal(p.at_lead(1800.0), obs)

    def test_perfect_score_at_lead_zero(self):
        # the paper's Fig. 7: persistence is exactly the observation at t=0
        obs = np.random.default_rng(1).uniform(0, 50, (8, 8))
        p = PersistenceForecast(obs)
        t = contingency(p(0.0), obs, 30.0)
        assert threat_score(t) == 1.0 or np.isnan(threat_score(t))

    def test_negative_lead_rejected(self):
        p = PersistenceForecast(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.at_lead(-1.0)

    def test_initial_copy_isolated(self):
        obs = np.zeros((2, 2))
        p = PersistenceForecast(obs)
        obs[...] = 99.0
        assert np.all(p(0.0) == 0.0)


class TestRainArea:
    def test_area_formula(self):
        rr = np.array([[0.5, 2.0], [30.0, 0.0]])
        assert rain_area_km2(rr, 1.0, cell_area_km2=0.25) == pytest.approx(0.5)
        assert rain_area_km2(rr, 20.0, cell_area_km2=0.25) == pytest.approx(0.25)

    def test_threshold_positive(self):
        with pytest.raises(ValueError):
            rain_area_km2(np.zeros((2, 2)), 0.0, 1.0)

    def test_climatology_series_shapes(self):
        t, a1, a20 = RainAreaClimatology(seed=0).series(2.0)
        assert len(t) == len(a1) == len(a20) == 5760
        assert np.all(a1 >= 0)
        assert np.all(a20 <= a1 + 1e-9)
        assert np.all(a1 <= 128.0 * 128.0)

    def test_diurnal_peak_afternoon(self):
        clim = RainAreaClimatology(seed=3, events_per_day=8.0)
        t, a1, _ = clim.series(10.0)
        hour = (t / 3600.0) % 24
        afternoon = a1[(hour > 13) & (hour < 19)].mean()
        night = a1[(hour > 1) & (hour < 7)].mean()
        assert afternoon > night

    def test_reproducible_by_seed(self):
        _, a, _ = RainAreaClimatology(seed=5).series(1.0)
        _, b, _ = RainAreaClimatology(seed=5).series(1.0)
        assert np.array_equal(a, b)
