import numpy as np
import pytest

from repro.config import reduced_inner_domain
from repro.grid import Grid
from repro.model.advection import (
    face_value_x,
    face_value_y,
    flux_divergence,
    mass_divergence,
)


@pytest.fixture(scope="module")
def grid():
    return Grid(reduced_inner_domain(nx=16, nz=8), dtype=np.float64)


def uniform_flow(grid, u=5.0):
    shape = grid.shape
    rhou = np.full(shape, u)
    rhov = np.zeros(shape)
    rhow = np.zeros(grid.shape_w)
    return rhou, rhov, rhow


class TestFaceValues:
    def test_ud1_picks_upwind_side(self, grid):
        s = np.arange(16.0)[None, None, :] * np.ones(grid.shape)
        pos = face_value_x(s, np.ones(grid.shape), scheme="ud1")
        assert np.allclose(pos[0, 0, :-1], s[0, 0, :-1])
        neg = face_value_x(s, -np.ones(grid.shape), scheme="ud1")
        assert np.allclose(neg[0, 0, :-1], s[0, 0, 1:])

    def test_ud3_exact_for_constant(self, grid):
        s = np.full(grid.shape, 3.0)
        f = face_value_x(s, np.ones(grid.shape), scheme="ud3")
        assert np.allclose(f, 3.0)

    def test_ud3_exact_for_linear_periodic_interior(self, grid):
        s = np.arange(16.0)[None, None, :] * np.ones(grid.shape)
        f = face_value_x(s, np.ones(grid.shape), scheme="ud3")
        # away from the periodic seam, the face value is i + 1/2
        assert np.allclose(f[0, 0, 2:-2], np.arange(16.0)[2:-2] + 0.5)

    def test_y_direction_by_symmetry(self, grid):
        rng = np.random.default_rng(0)
        s = rng.normal(size=grid.shape)
        u = rng.normal(size=grid.shape)
        fx = face_value_x(s, u)
        fy = face_value_y(np.swapaxes(s, 1, 2), np.swapaxes(u, 1, 2))
        assert np.allclose(fx, np.swapaxes(fy, 1, 2))


class TestFluxDivergence:
    def test_constant_scalar_uniform_flow_no_tendency(self, grid):
        rhou, rhov, rhow = uniform_flow(grid)
        s = np.full(grid.shape, 2.0)
        tend = flux_divergence(grid, rhou, rhov, rhow, s)
        assert np.allclose(tend, 0.0, atol=1e-12)

    def test_conservation_horizontal(self, grid):
        # periodic horizontal: domain integral of the tendency vanishes
        rng = np.random.default_rng(1)
        rhou = rng.normal(size=grid.shape)
        rhov = rng.normal(size=grid.shape)
        rhow = np.zeros(grid.shape_w)
        s = rng.normal(size=grid.shape)
        tend = flux_divergence(grid, rhou, rhov, rhow, s)
        assert abs(np.sum(tend)) < 1e-8 * np.sum(np.abs(tend))

    def test_conservation_vertical(self, grid):
        # rigid lids: column-integrated tendency from vertical flux vanishes
        rng = np.random.default_rng(2)
        rhow = np.zeros(grid.shape_w)
        rhow[1:-1] = rng.normal(size=(grid.nz - 1, grid.ny, grid.nx))
        s = rng.normal(size=grid.shape)
        zeros = np.zeros(grid.shape)
        tend = flux_divergence(grid, zeros, zeros, rhow, s, scheme="ud1")
        col = np.sum(tend * grid.dz[:, None, None], axis=0)
        assert np.allclose(col, 0.0, atol=1e-10)

    def test_upwind_translation_direction(self, grid):
        # a blob in +x flow must gain mass downstream of the peak
        s = np.zeros(grid.shape)
        s[:, :, 5] = 1.0
        rhou, rhov, rhow = uniform_flow(grid, u=1.0)
        tend = flux_divergence(grid, rhou, rhov, rhow, s, scheme="ud1")
        assert np.all(tend[:, :, 6] > 0)
        assert np.all(tend[:, :, 5] < 0)

    def test_ud1_more_diffusive_than_ud3(self, grid):
        k = 4 * 2 * np.pi / grid.domain.extent_x
        s = np.sin(k * grid.x_c)[None, None, :] * np.ones(grid.shape)
        rhou, rhov, rhow = uniform_flow(grid, u=1.0)
        t1 = flux_divergence(grid, rhou, rhov, rhow, s, scheme="ud1")
        t3 = flux_divergence(grid, rhou, rhov, rhow, s, scheme="ud3")
        # damping component = projection of tendency onto -s
        damp1 = -np.sum(t1 * s)
        damp3 = -np.sum(t3 * s)
        assert damp1 > damp3 >= -1e-10


class TestMassDivergence:
    def test_uniform_flow_divergence_free(self, grid):
        rhou, rhov, _ = uniform_flow(grid)
        assert np.allclose(mass_divergence(grid, rhou, rhov), 0.0)

    def test_convergence_sign(self, grid):
        rhou = np.zeros(grid.shape)
        rhou[:, :, :8] = 1.0  # flow stops at i=8: convergence there
        div = mass_divergence(grid, rhou, np.zeros(grid.shape))
        assert np.all(div[:, :, 8] < 0)  # mass piles up -> negative divergence
