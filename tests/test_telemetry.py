"""Telemetry layer: tracer spans, metrics, profiler, replay, CLI."""

import numpy as np
import pytest

from repro.telemetry import (
    NULL_SPAN,
    NULL_TELEMETRY,
    KernelProfiler,
    MetricsRegistry,
    NullMetricsRegistry,
    Telemetry,
    Tracer,
    TTS_BUCKETS,
    read_jsonl,
)
from repro.telemetry.metrics import Histogram
from repro.telemetry.replay import (
    breakdown_table,
    build_tree,
    cycle_breakdowns,
    load_run,
    reconcile_cycles,
    snapshot_deadline_fraction,
)
from repro.workflow.monitor import WorkflowMonitor
from repro.workflow.realtime import CycleRecord


class FakeClock:
    """Deterministic monotonic clock: each call advances by ``step``."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        t = self.t
        self.t += self.step
        return t


def _rec(cycle, tts, *, ok=True, degraded=False):
    t_obs = cycle * 30.0
    return CycleRecord(
        cycle=cycle, t_obs=t_obs, ok=ok, t_file=t_obs,
        t_transferred=t_obs, t_analysis=t_obs, t_product=t_obs + tts,
        degraded=degraded,
    )


class TestTracer:
    def test_nested_spans_record_parentage(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("cycle", cycle=1):
            with tr.span("forecast"):
                pass
            with tr.span("letkf"):
                with tr.span("solver"):
                    pass
        recs = tr.to_records()
        by_name = {r["name"]: r for r in recs}
        assert by_name["cycle"]["parent_id"] is None
        assert by_name["forecast"]["parent_id"] == by_name["cycle"]["span_id"]
        assert by_name["letkf"]["parent_id"] == by_name["cycle"]["span_id"]
        assert by_name["solver"]["parent_id"] == by_name["letkf"]["span_id"]
        assert by_name["cycle"]["attrs"] == {"cycle": 1}

    def test_deterministic_ids(self):
        def run():
            tr = Tracer(clock=FakeClock())
            with tr.span("a"):
                with tr.span("b"):
                    pass
            with tr.span("c"):
                pass
            return tr.to_records()

        assert run() == run()

    def test_disabled_tracer_returns_shared_null_span(self):
        tr = Tracer(enabled=False)
        sp = tr.span("anything", foo=1)
        assert sp is NULL_SPAN
        with sp as inner:
            inner.set(bar=2)  # no-op, no error
        assert tr.spans == []

    def test_exception_recorded_and_reraised(self):
        tr = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("x")
        assert tr.spans[0].attrs["error"] == "ValueError"
        assert tr.spans[0].t_end is not None

    def test_jsonl_roundtrip(self, tmp_path):
        tr = Tracer(clock=FakeClock())
        with tr.span("cycle"):
            with tr.span("forecast"):
                pass
        path = tr.export_jsonl(tmp_path / "trace.jsonl")
        assert read_jsonl(path) == tr.to_records()


class TestHistogram:
    def test_bucket_edge_is_inclusive(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)   # lands in le=1 bucket (v <= edge)
        h.observe(1.5)   # le=2
        h.observe(2.0)   # le=2
        h.observe(99.0)  # +Inf
        assert h.counts == [1, 2, 1]
        assert h.cumulative_counts() == [1, 3, 4]
        assert h.fraction_le(2.0) == 0.75

    def test_nan_observations_skipped(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(float("nan"))
        assert h.count == 0 and h.sum == 0.0

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_fraction_le_requires_exact_edge(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.fraction_le(1.5)


class TestMetricsRegistry:
    def test_get_or_create_and_labels(self):
        reg = MetricsRegistry()
        c1 = reg.counter("n", stage="a")
        c2 = reg.counter("n", stage="a")
        c3 = reg.counter("n", stage="b")
        assert c1 is c2 and c1 is not c3

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("n").inc(-1)

    def test_snapshot_roundtrip_lossless(self):
        reg = MetricsRegistry()
        reg.counter("c", help="a counter").inc(3)
        reg.gauge("g").set(-2.5)
        h = reg.histogram("h", buckets=(1.0, 5.0), stage="x")
        h.observe(0.5)
        h.observe(7.0)
        reg2 = MetricsRegistry.from_snapshot(reg.snapshot())
        assert reg2.snapshot() == reg.snapshot()
        assert reg2.get("histogram", "h", stage="x").counts == [1, 0, 1]

    def test_prometheus_export_golden(self):
        reg = MetricsRegistry()
        reg.counter("bda_cycles_total", help="DA cycles run").inc(2)
        h = reg.histogram("bda_tts_seconds", buckets=(30.0, 60.0))
        h.observe(25.0)
        h.observe(45.0)
        h.observe(100.0)
        reg.gauge("bda_members_per_second").set(12.5)
        expected = "\n".join([
            "# HELP bda_cycles_total DA cycles run",
            "# TYPE bda_cycles_total counter",
            "bda_cycles_total 2",
            "# TYPE bda_members_per_second gauge",
            "bda_members_per_second 12.5",
            "# TYPE bda_tts_seconds histogram",
            'bda_tts_seconds_bucket{le="30"} 1',
            'bda_tts_seconds_bucket{le="60"} 2',
            'bda_tts_seconds_bucket{le="+Inf"} 3',
            "bda_tts_seconds_sum 170",
            "bda_tts_seconds_count 3",
            "",
        ])
        assert reg.to_prometheus() == expected

    def test_null_registry_is_inert(self):
        reg = NullMetricsRegistry()
        reg.counter("x").inc()
        reg.histogram("y").observe(1.0)
        reg.gauge("z").set(5.0)
        assert len(reg) == 0
        assert reg.get("counter", "x") is None
        assert reg.to_prometheus() == ""


class TestKernelProfiler:
    def test_accumulates_calls_and_bytes(self):
        prof = KernelProfiler(clock=FakeClock(step=0.5))
        for _ in range(3):
            with prof.profile("k", nbytes=100):
                pass
        st = prof.stats["k"]
        assert st.calls == 3 and st.nbytes == 300
        assert st.seconds == pytest.approx(1.5)
        assert "k" in prof.report()

    def test_publish_mirrors_into_registry(self):
        prof = KernelProfiler(clock=FakeClock())
        with prof.profile("k", nbytes=8):
            pass
        reg = MetricsRegistry()
        prof.publish(reg)
        assert reg.get("counter", "kernel_calls_total", kernel="k").value == 1
        assert reg.get("counter", "kernel_bytes_total", kernel="k").value == 8

    def test_publish_to_disabled_registry_is_noop(self):
        prof = KernelProfiler(clock=FakeClock())
        with prof.profile("k"):
            pass
        prof.publish(NullMetricsRegistry())  # must not raise


class TestTelemetryBundle:
    def test_disabled_bundle_is_fully_inert(self):
        tel = Telemetry.disabled()
        assert not tel.enabled
        assert tel.span("cycle") is NULL_SPAN
        tel.counter("c").inc()
        tel.histogram("h").observe(1.0)
        assert not tel.profiler.enabled
        assert NULL_TELEMETRY.span("x") is NULL_SPAN

    def test_write_artifacts(self, tmp_path):
        tel = Telemetry(profile_kernels=True)
        with tel.span("cycle"):
            pass
        tel.counter("bda_cycles_total").inc()
        with tel.profiler.profile("k", nbytes=4):
            pass
        paths = tel.write(tmp_path / "run")
        assert set(paths) == {"trace", "metrics_json", "metrics_prom"}
        records, reg = load_run(tmp_path / "run")
        assert records[0]["name"] == "cycle"
        assert reg.get("counter", "bda_cycles_total").value == 1
        # profiler stats published on write
        assert reg.get("counter", "kernel_calls_total", kernel="k").value == 1


class TestReplay:
    def _trace(self):
        tr = Tracer(clock=FakeClock())
        for c in range(2):
            with tr.span("cycle", cycle=c):
                with tr.span("forecast"):
                    pass
                with tr.span("letkf"):
                    with tr.span("solver"):
                        pass
        return tr.to_records()

    def test_tree_and_breakdowns(self):
        roots = build_tree(self._trace())
        assert [r.name for r in roots] == ["cycle", "cycle"]
        rows = cycle_breakdowns(roots)
        assert len(rows) == 2
        assert set(rows[0]) == {"forecast", "letkf", "_total", "_children"}
        table = breakdown_table(rows)
        assert "forecast" in table and "cycle total" in table

    def test_reconcile_reports_gap(self):
        rows = [
            {"forecast": 1.0, "letkf": 2.0, "_total": 3.0, "_children": 3.0},
            {"forecast": 1.0, "letkf": 2.0, "_total": 4.0, "_children": 3.0},
        ]
        rec = reconcile_cycles(rows)
        assert rec["n_cycles"] == 2
        assert rec["max_gap_fraction"] == pytest.approx(0.25)

    def test_snapshot_deadline_fraction_prefers_counters(self):
        reg = MetricsRegistry()
        reg.counter("bda_cycles_ok_total").inc(4)
        reg.counter("bda_deadline_hit_total").inc(3)
        # a contradictory histogram must NOT win over the counters
        h = reg.histogram("bda_tts_seconds", buckets=TTS_BUCKETS)
        h.observe(10.0)
        assert snapshot_deadline_fraction(reg) == pytest.approx(0.75)

    def test_snapshot_deadline_fraction_histogram_fallback(self):
        reg = MetricsRegistry()
        h = reg.histogram("bda_tts_seconds", buckets=TTS_BUCKETS)
        for v in (100.0, 170.0, 200.0, 350.0):
            h.observe(v)
        assert snapshot_deadline_fraction(reg, deadline_s=180.0) == pytest.approx(0.5)


class TestMonitorTelemetry:
    def test_monitor_from_snapshot_equivalence(self):
        """The replayed snapshot reproduces the monitor's numbers exactly."""
        tel = Telemetry()
        mon = WorkflowMonitor(deadline_s=180.0, telemetry=tel)
        tts_values = [100.0, 150.0, 179.0, 181.0, 250.0, 120.0]
        for i, tts in enumerate(tts_values):
            mon.observe(_rec(i, tts))
        mon.observe(_rec(6, 0.0, ok=False))
        snap = MetricsRegistry.from_snapshot(tel.metrics.snapshot())
        assert snapshot_deadline_fraction(snap) == pytest.approx(
            mon.cumulative_deadline_fraction()
        )
        assert snap.get("counter", "bda_cycles_ok_total").value == mon.n_ok
        assert snap.get("counter", "bda_cycles_observed_total").value == mon.n_seen
        h = snap.get("histogram", "bda_tts_seconds")
        assert h.count == len(tts_values)
        assert h.sum == pytest.approx(sum(tts_values))

    def test_nan_tts_does_not_poison_window_stats(self):
        """Bugfix: one ok-flagged record with NaN timing must not flip
        the window median to NaN or silently skew compliance."""
        mon = WorkflowMonitor(deadline_s=180.0)
        for i in range(4):
            mon.observe(_rec(i, 100.0))
        poisoned = CycleRecord(
            cycle=4, t_obs=120.0, ok=True, t_file=120.0,
            t_transferred=120.0, t_analysis=120.0, t_product=float("nan"),
        )
        mon.observe(poisoned)
        assert np.isfinite(mon.median_tts())
        assert mon.median_tts() == pytest.approx(100.0)
        assert mon.mean_tts() == pytest.approx(100.0)
        assert mon.deadline_fraction() == pytest.approx(1.0)
        assert mon.window_failure_count() == 1
        assert mon.availability() == pytest.approx(0.8)

    def test_failed_cycles_excluded_from_compliance(self):
        mon = WorkflowMonitor(deadline_s=180.0)
        mon.observe(_rec(0, 100.0))
        mon.observe(_rec(1, 0.0, ok=False))
        mon.observe(_rec(2, 200.0))
        assert mon.deadline_fraction() == pytest.approx(0.5)
        assert mon.availability() == pytest.approx(2.0 / 3.0)


class TestInstrumentedComponents:
    def test_dacycler_emits_cycle_spans_and_metrics(self, small_scale_config):
        from repro.config import LETKFConfig, RadarConfig
        from repro.core import BDASystem
        from repro.model.initial import convective_sounding

        tel = Telemetry(profile_kernels=True)
        lcfg = LETKFConfig(
            ensemble_size=small_scale_config.ensemble_size_analysis,
            analysis_zmin=0.0, analysis_zmax=20000.0,
            localization_h=12000.0, localization_v=4000.0,
            gross_error_refl_dbz=100.0, gross_error_doppler_ms=100.0,
        )
        bda = BDASystem(
            small_scale_config, lcfg, RadarConfig().reduced(),
            sounding=convective_sounding(), seed=3, telemetry=tel,
        )
        bda.trigger_convection(n=1, amplitude=4.0)
        bda.cycle()
        roots = build_tree(tel.tracer.to_records())
        cycles = [r for r in roots if r.name == "cycle"]
        assert len(cycles) == 1
        names = {n.name for n in cycles[0].walk()}
        assert {"forecast", "qc", "letkf", "obsope", "solver", "update"} <= names
        rows = cycle_breakdowns(cycles)
        rec = reconcile_cycles(rows)
        assert rec["max_gap_fraction"] < 0.01
        assert tel.metrics.get("counter", "bda_cycles_total").value == 1
        # kernel profiler saw the hot kernels
        assert "hevi_dycore" in tel.profiler.stats
        assert any(k.startswith("eigh_") for k in tel.profiler.stats)

    def test_transfer_engine_metrics(self):
        from repro.jitdt.transfer import TransferEngine

        tel = Telemetry()
        eng = TransferEngine(telemetry=tel)
        eng.send(b"x" * 1024)
        assert tel.metrics.get("counter", "jitdt_bytes_total").value == 1024
        assert tel.tracer.spans[0].name == "transfer"
        assert tel.tracer.spans[0].attrs["nbytes"] == 1024

    def test_realtime_workflow_metrics(self):
        from repro.config import WorkflowConfig
        from repro.workflow.realtime import RealtimeWorkflow

        tel = Telemetry()
        wf = RealtimeWorkflow(WorkflowConfig(), seed=5, telemetry=tel)
        for c in range(3):
            wf.run_cycle(c)
        wf.run_cycle(3, in_outage=True)
        assert tel.metrics.get("counter", "workflow_cycles_total").value == 4
        assert tel.metrics.get(
            "counter", "workflow_cycles_skipped_total", reason="outage"
        ).value == 1
        h = tel.metrics.get(
            "histogram", "workflow_stage_seconds", stage="jitdt_transfer"
        )
        assert h is not None and h.count == 3

    def test_untelemetered_components_share_null_bundle(self):
        from repro.config import WorkflowConfig
        from repro.workflow.realtime import RealtimeWorkflow

        wf = RealtimeWorkflow(WorkflowConfig(), seed=5)
        assert wf.telemetry is NULL_TELEMETRY
        wf.run_cycle(0)  # must not record anything anywhere
        assert len(NULL_TELEMETRY.tracer.spans) == 0


class TestCLI:
    def test_hyphenated_spellings_accepted(self):
        from repro.cli import build_parser

        p = build_parser()
        args = p.parse_args(["quick-cycle", "--members", "3"])
        assert args.command == "quick-cycle"
        assert args.members == 3
        args = p.parse_args(["fault-campaign", "--cycles", "10"])
        assert args.command == "fault-campaign"

    def test_removed_alias_spellings_error_with_hint(self, capsys):
        from repro.cli import EXIT_USAGE, main

        for spelling, hint in (
            ("quickcycle", "quick-cycle"),
            ("faultcampaign", "fault-campaign"),
            ("ingestcampaign", "ingest-campaign"),
        ):
            assert main([spelling]) == EXIT_USAGE
            err = capsys.readouterr().err
            assert "removed" in err and hint in err

    def test_common_flags_on_every_campaign_command(self):
        from repro.cli import build_parser

        p = build_parser()
        for cmd in ("fig5", "fault-campaign", "quick-cycle"):
            args = p.parse_args([cmd, "--seed", "9", "--telemetry", "t",
                                 "--out", "o"])
            assert args.seed == 9 and args.telemetry == "t" and args.out == "o"

    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_telemetry_command_missing_dir_is_usage_error(self, capsys):
        from repro.cli import EXIT_USAGE, main

        assert main(["telemetry", "/nonexistent/run"]) == EXIT_USAGE

    def test_telemetry_command_replays_run(self, tmp_path, capsys):
        from repro.cli import main

        tel = Telemetry()
        mon = WorkflowMonitor(deadline_s=180.0, telemetry=tel)
        with tel.span("cycle", cycle=0):
            with tel.span("forecast"):
                pass
            with tel.span("letkf"):
                pass
        mon.observe(_rec(0, 100.0))
        tel.write(tmp_path / "run")
        assert main(["telemetry", str(tmp_path / "run")]) == 0
        out = capsys.readouterr().out
        assert "TTS breakdown" in out
        assert "deadline compliance" in out
        assert "100.0%" in out

    def test_faultcampaign_telemetry_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        run = tmp_path / "fc"
        assert main(["fault-campaign", "--cycles", "40", "--telemetry",
                     str(run)]) == 0
        assert (run / "trace.jsonl").exists()
        reg = MetricsRegistry.read_json(run / "metrics.json")
        assert reg.get("counter", "workflow_cycles_total").value == 40
        assert reg.get("counter", "bda_cycles_observed_total").value == 40
        capsys.readouterr()
        assert main(["telemetry", str(run)]) == 0
        assert "metrics snapshot" in capsys.readouterr().out


class TestDeprecation:
    def test_member_list_setitem_is_a_hard_error(self, small_scale_config):
        from repro.core.ensemble import Ensemble
        from repro.model.model import ScaleRM

        model = ScaleRM(small_scale_config)
        ens = Ensemble.from_model(model, 3, np.random.default_rng(0))
        replacement = ens.members[0].copy()
        # deprecated in PR 3, removed now: the error names the migration
        with pytest.raises(TypeError, match="set_member"):
            ens.members[1] = replacement

    def test_supported_mutation_path_is_silent(self, small_scale_config):
        import warnings

        from repro.core.ensemble import Ensemble
        from repro.model.model import ScaleRM

        model = ScaleRM(small_scale_config)
        ens = Ensemble.from_model(model, 3, np.random.default_rng(0))
        replacement = ens.state.member_view(0).copy()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ens.state.set_member(1, replacement)
