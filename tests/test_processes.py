"""The multiprocess execution backend and its shared-memory slabs.

Contracts under test, in dependency order:

* :mod:`repro.model.shm` — slab create/attach/load round-trips are
  bit-identical, views write through, close unlinks (the autouse
  conftest fixture fails any test that leaks a segment);
* :class:`~repro.core.backends.ProcessesBackend` — member-block
  forecasts and the row-sharded LETKF transform are bit-identical to
  the in-process backends, under both start methods, across worker
  crashes, and composed under ``sharded``/sanitized wrappers;
* ``precision`` — the single/double mode threads config → solver →
  eigensolver, and each mode is internally bit-exact;
* the PR-1 checkpoint path round-trips shared-memory-backed states.
"""

import os

import numpy as np
import pytest

import repro.model.shm as shm
from repro.config import ExecutionConfig
from repro.core.backends import (
    ProcessesBackend,
    ShardedBackend,
    VectorizedBackend,
    make_backend,
)
from repro.core.ensemble import Ensemble
from repro.letkf.core import letkf_transform
from repro.model.ensemble_state import EnsembleState
from repro.model.model import ScaleRM
from repro.model.shm import SharedArena, SharedStateSlab, state_spec

from .test_backends import build_bda, tiny_ensemble


def assert_states_equal(a: EnsembleState, b: EnsembleState) -> None:
    assert set(a.fields) == set(b.fields)
    for v in a.fields:
        np.testing.assert_array_equal(a.fields[v], b.fields[v])
    assert set(a.aux) == set(b.aux)
    for k in a.aux:
        np.testing.assert_array_equal(a.aux[k], b.aux[k])
    assert a.time == b.time and a.nsteps == b.nsteps


# ---------------------------------------------------------------------------
# shared-memory slabs
# ---------------------------------------------------------------------------


class TestSharedSlabs:
    def test_share_roundtrip_bit_identical(self):
        _, _, ens = tiny_ensemble(members=3)
        with SharedArena() as arena:
            shared = ens.state.to_shared(arena)
            assert_states_equal(shared, ens.state)
            # ...and the arrays really live in the segment, not the heap
            assert len(arena) == 1

    def test_views_write_through_both_directions(self):
        _, _, ens = tiny_ensemble(members=3)
        fspec, aspec = state_spec(ens.state)
        with SharedStateSlab(fspec, aspec) as slab:
            slab.load(ens.state)
            st = slab.state(
                ens.state.grid, ens.state.reference,
                time=ens.state.time, nsteps=ens.state.nsteps,
            )
            st.fields["qv"][1] = 0.5
            assert np.all(slab.fields["qv"][1] == 0.5)
            slab.fields["qv"][2] = 0.25
            assert np.all(st.fields["qv"][2] == 0.25)

    def test_attach_maps_same_pages(self):
        _, _, ens = tiny_ensemble(members=2)
        fspec, aspec = state_spec(ens.state)
        with SharedStateSlab(fspec, aspec) as slab:
            slab.load(ens.state)
            twin = SharedStateSlab.attach(slab.manifest)
            try:
                np.testing.assert_array_equal(
                    twin.fields["qv"], slab.fields["qv"]
                )
                twin.fields["qv"][0] = 0.75
                assert np.all(slab.fields["qv"][0] == 0.75)
            finally:
                twin.close()

    def test_member_block_views_and_copy(self):
        _, _, ens = tiny_ensemble(members=4)
        fspec, aspec = state_spec(ens.state)
        with SharedStateSlab(fspec, aspec) as slab:
            slab.load(ens.state)
            blk = slab.state(
                ens.state.grid, ens.state.reference,
                time=0.0, nsteps=0, lo=1, hi=3,
            )
            assert blk.n_members == 2
            np.testing.assert_array_equal(
                blk.fields["dens_p"], ens.state.fields["dens_p"][1:3]
            )
            private = slab.state(
                ens.state.grid, ens.state.reference,
                time=0.0, nsteps=0, copy=True,
            )
            slab.fields["dens_p"][...] = 0.0
            assert np.any(private.fields["dens_p"] != 0.0)

    def test_close_unlinks_and_is_idempotent(self):
        _, _, ens = tiny_ensemble(members=2)
        fspec, aspec = state_spec(ens.state)
        slab = SharedStateSlab(fspec, aspec)
        name = slab.name
        assert name in shm.live_segment_names()
        slab.close()
        slab.close()
        assert name not in shm.live_segment_names()
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_matches_detects_layout_changes(self):
        _, _, ens = tiny_ensemble(members=2)
        fspec, aspec = state_spec(ens.state)
        with SharedStateSlab(fspec, aspec) as slab:
            assert slab.matches(fspec, aspec)
            smaller = dict(fspec)
            smaller.pop(next(iter(smaller)))
            assert not slab.matches(smaller, aspec)
            assert not slab.matches(
                fspec, {"tke": (fspec["qv"][0], "float32")}
            )


# ---------------------------------------------------------------------------
# the worker pool
# ---------------------------------------------------------------------------


class TestProcessesBackend:
    def test_forecast_bit_identical_to_vectorized_two_windows(self):
        cfg, _, ens = tiny_ensemble(members=4)
        vec = VectorizedBackend().forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
        vec = VectorizedBackend().forecast(ScaleRM(cfg), vec, 30.0)
        with ProcessesBackend(2) as pool:
            # window 1 learns the physics aux keys over the wire; window
            # 2 exercises the reserved-slab-slot fast path
            out = pool.forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
            out = pool.forecast(ScaleRM(cfg), out, 30.0)
            assert_states_equal(out, vec)
            # deterministic contiguous member->worker assignment
            blocks = sorted(
                (t["worker"], t["members"]) for t in pool.last_timings
            )
            assert blocks == [(0, 2), (1, 2)]

    def test_single_worker_runs_in_process(self):
        cfg, _, ens = tiny_ensemble(members=3)
        vec = VectorizedBackend().forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
        with ProcessesBackend(1) as pool:
            out = pool.forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
            assert_states_equal(out, vec)
            assert not pool._procs  # never forked

    def test_worker_crash_recovers_bit_identically(self):
        cfg, _, ens = tiny_ensemble(members=4)
        vec = VectorizedBackend().forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
        with ProcessesBackend(2) as pool:
            pool.forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
            pool._task_qs[0].put({"op": "exit"})  # hard-kill worker 0
            out = pool.forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
            assert_states_equal(out, vec)
            assert all(p.is_alive() for p in pool._procs)  # respawned

    def test_spawn_start_method_bit_identical(self):
        cfg, _, ens = tiny_ensemble(members=4)
        vec = VectorizedBackend().forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
        with ProcessesBackend(2, start_method="spawn") as pool:
            out = pool.forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
            assert_states_equal(out, vec)

    def test_close_is_idempotent_and_reusable_guard(self):
        cfg, _, ens = tiny_ensemble(members=4)
        pool = ProcessesBackend(2)
        pool.forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
        procs = list(pool._procs)
        pool.close()
        pool.close()
        for p in procs:
            p.join(timeout=10)
            assert not p.is_alive()
        assert not shm.live_segment_names()

    def test_letkf_runner_matches_direct_transform(self):
        rng = np.random.default_rng(31)
        rows, no, m = 400, 12, 8
        for precision, dt in (("single", np.float32), ("double", np.float64)):
            dYb = rng.normal(size=(rows, no, m)).astype(dt)
            dYb -= dYb.mean(axis=2, keepdims=True)
            d = rng.normal(size=(rows, no)).astype(dt)
            rinv = rng.uniform(0.1, 1.0, size=(rows, no)).astype(dt)
            direct = letkf_transform(
                dYb, d, rinv, rtpp_factor=0.95,
                assume_active=True, precision=precision,
            )
            with ProcessesBackend(2) as pool:
                W = pool.letkf_runner(
                    dYb, d, rinv, rtpp_factor=0.95,
                    assume_active=True, precision=precision,
                )
                np.testing.assert_array_equal(W, direct)
                assert W.dtype == dt
                assert len(pool.last_letkf_timings) == 2

    def test_letkf_runner_small_problem_stays_in_process(self):
        rng = np.random.default_rng(32)
        dYb = rng.normal(size=(40, 6, 8)).astype(np.float32)
        d = rng.normal(size=(40, 6)).astype(np.float32)
        rinv = rng.uniform(0.1, 1.0, size=(40, 6)).astype(np.float32)
        direct = letkf_transform(dYb, d, rinv, assume_active=True)
        with ProcessesBackend(2) as pool:
            W = pool.letkf_runner(dYb, d, rinv, assume_active=True)
            np.testing.assert_array_equal(W, direct)
            assert not pool._procs  # under the per-worker row floor


# ---------------------------------------------------------------------------
# spec resolution and composition
# ---------------------------------------------------------------------------


class TestResolutionAndComposition:
    def test_make_backend_processes(self):
        be = make_backend(ExecutionConfig(backend="processes", workers=3))
        try:
            assert isinstance(be, ProcessesBackend)
            assert be.n_workers == 3
        finally:
            be.close()

    def test_make_backend_sharded_inner(self):
        be = make_backend(ExecutionConfig(
            backend="sharded", n_shards=2, sharded_inner="processes", workers=2
        ))
        try:
            assert isinstance(be, ShardedBackend)
            assert isinstance(be.inner, ProcessesBackend)
            assert be.inner.n_workers == 2
        finally:
            be.close()

    def test_sharded_delegates_blocks_through_inner(self):
        cfg, _, ens = tiny_ensemble(members=5)
        vec = ShardedBackend(n_shards=2).forecast(
            ScaleRM(cfg), ens.state.copy(), 30.0
        )

        class CountingInner(VectorizedBackend):
            calls = 0

            def forecast(self, model, state, duration):
                CountingInner.calls += 1
                return super().forecast(model, state, duration)

        backend = ShardedBackend(n_shards=2, inner=CountingInner())
        out = backend.forecast(ScaleRM(cfg), ens.state.copy(), 30.0)
        assert CountingInner.calls == 2  # one per shard
        for v in vec.fields:
            np.testing.assert_array_equal(out.fields[v], vec.fields[v])

    def test_execution_config_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionConfig(backend="processes", workers=0)
        with pytest.raises(ValueError, match="precision"):
            ExecutionConfig(precision="half")
        with pytest.raises(ValueError, match="inner"):
            ExecutionConfig(backend="sharded", sharded_inner="sharded")
        assert ExecutionConfig(precision="single").precision_dtype() == np.float32
        assert ExecutionConfig(precision="double").precision_dtype() == np.float64


# ---------------------------------------------------------------------------
# whole-system equivalence and checkpointing
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestSystemEquivalence:
    def test_bda_cycles_processes_bit_identical_to_vectorized(self):
        ref = build_bda("vectorized", seed=9)
        for _ in range(2):
            ref.cycle()
        with build_bda(
            ExecutionConfig(backend="processes", workers=2), seed=9
        ) as bda:
            for _ in range(2):
                bda.cycle()
            assert_states_equal(bda.ensemble.state, ref.ensemble.state)
            # worker block timings surfaced for the bda_* metrics merge
            assert bda.cycler._pool is not None

    def test_double_precision_mode_reaches_the_solver(self):
        with build_bda(
            ExecutionConfig(backend="processes", workers=2, precision="double"),
            seed=9,
        ) as bda:
            assert bda.cycler.letkf.dtype == np.float64
            res = bda.cycle()
            assert res.mode == "analysis"

    def test_checkpoint_roundtrip_with_shm_backed_state(self, tmp_path):
        """Kill/resume: a shared-memory-backed batch checkpoints exactly.

        The reference run cycles straight through; the victim moves its
        batch into a shared segment, checkpoints, "dies" (arena closed,
        segments unlinked), and a fresh system resumes from the file —
        bit-identical to the uninterrupted run.
        """
        path = tmp_path / "ck.npz"
        ref = build_bda("vectorized", seed=23)
        ref.cycle()
        ref.cycler.run_cycle(None)

        victim = build_bda("vectorized", seed=23)
        with SharedArena() as arena:
            victim.ensemble.state = victim.ensemble.state.to_shared(arena)
            victim.cycle()
            victim.cycler.save(path)
        # segments are gone; the checkpoint must have copied the values
        assert not shm.live_segment_names()

        resumed = build_bda("vectorized", seed=23)
        resumed.cycler.load(path)
        resumed.cycler.run_cycle(None)
        assert_states_equal(resumed.ensemble.state, ref.ensemble.state)
