"""The sparse LETKF hot path: compaction bit-identity + workspaces.

The contract under test (see the "Sparsity contract" in
:mod:`repro.letkf.core`): compacting the transform batch down to active
points is *bit-exact* — active points get identical analyses whether or
not the inactive rows ride along — and inactive points keep the
background untouched. Observation-axis compaction is numerically
equivalent (exact-zero contributions removed) but not bit-exact.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.parallel_letkf import DistributedLETKF
from repro.config import LETKFConfig, RadarConfig, ScaleConfig, reduced_inner_domain
from repro.core.cycling import DACycler
from repro.core.ensemble import Ensemble
from repro.grid import Grid
from repro.letkf import (
    LETKFSolver,
    LETKFWorkspace,
    compact_observations,
    letkf_transform,
    observation_selection,
)
from repro.letkf.obsope import RadarObsOperator
from repro.letkf.qc import GriddedObservations
from repro.model.model import ScaleRM


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def make_batch(rng, G, No, m, active_frac):
    """Random transform inputs with ~active_frac rows carrying obs."""
    dYb = rng.normal(size=(G, No, m)).astype(np.float32)
    dYb -= dYb.mean(axis=2, keepdims=True)
    d = np.asfortranarray(rng.normal(size=(G, No)).astype(np.float32))
    rinv = rng.uniform(0.1, 2.0, size=(G, No)).astype(np.float32)
    rinv[rng.random((G, No)) > 0.5] = 0.0  # per-obs validity
    inactive = rng.random(G) > active_frac
    rinv[inactive] = 0.0
    return dYb, d, rinv


def patch_mask(grid, frac):
    """Centered storm patch covering ``frac`` of the horizontal area."""
    mask = np.zeros(grid.shape, bool)
    if frac >= 1.0:
        mask[...] = True
        return mask
    if frac <= 0.0:
        return mask
    sy = max(1, int(round(grid.ny * np.sqrt(frac))))
    sx = max(1, int(round(grid.nx * np.sqrt(frac))))
    j0, i0 = (grid.ny - sy) // 2, (grid.nx - sx) // 2
    mask[:, j0 : j0 + sy, i0 : i0 + sx] = True
    return mask


def dilated_active_cells(solver, valid):
    """Analysis cells with >= 1 valid obs inside the stencil."""
    g = solver.grid
    offs = solver.stencil.offsets
    pk = int(np.max(np.abs(offs[:, 0])))
    pj = int(np.max(np.abs(offs[:, 1])))
    pi = int(np.max(np.abs(offs[:, 2])))
    pv = np.pad(valid, ((pk, pk), (pj, pj), (pi, pi)), constant_values=False)
    act = np.zeros(g.shape, bool)
    for dk, dj, di in offs:
        act |= pv[
            pk + dk : pk + dk + g.nz,
            pj + dj : pj + dj + g.ny,
            pi + di : pi + di + g.nx,
        ]
    act &= solver.level_mask[:, None, None]
    return act


def solver_case(nx=10, nz=8, m=12, frac=0.1, seed=5):
    grid = Grid(reduced_inner_domain(nx=nx, nz=nz))
    cfg = LETKFConfig(
        ensemble_size=m,
        localization_h=9000.0,
        localization_v=3000.0,
        analysis_zmin=0.0,
        analysis_zmax=20000.0,
        eigensolver="lapack",
    )
    rng = np.random.default_rng(seed)
    truth = (rng.normal(size=grid.shape) * 8 + 20).astype(np.float32)
    ens = {
        "x": (truth + rng.normal(size=(m,) + grid.shape) * 4).astype(np.float32),
        "qv": np.abs(rng.normal(size=(m,) + grid.shape)).astype(np.float32) * 1e-4,
    }
    obs = GriddedObservations(
        kind="reflectivity",
        values=truth + rng.normal(size=grid.shape).astype(np.float32),
        valid=patch_mask(grid, frac),
        error_std=1.0,
    )
    hxb = {"reflectivity": ens["x"].copy()}
    return grid, cfg, ens, [obs], hxb


# ---------------------------------------------------------------------------
# core: active-row compaction is bit-exact
# ---------------------------------------------------------------------------


class TestTransformCompaction:
    @settings(max_examples=25, deadline=None)
    @given(
        G=st.integers(4, 40),
        No=st.integers(1, 24),
        m=st.integers(3, 24),
        active_frac=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_row_compaction_bit_identical(self, G, No, m, active_frac, seed):
        """Property: dropping inactive rows never changes active rows."""
        rng = np.random.default_rng(seed)
        dYb, d, rinv = make_batch(rng, G, No, m, active_frac)
        W_full = letkf_transform(dYb, d, rinv, backend="lapack")
        act = np.flatnonzero(np.any(rinv > 0.0, axis=1))
        # solver-path operand layouts: point-major dYb and d
        W_act = letkf_transform(
            np.ascontiguousarray(dYb[act]),
            np.ascontiguousarray(d[act]),
            np.ascontiguousarray(rinv[act]),
            backend="lapack",
            assume_active=True,
        )
        assert np.array_equal(W_full[act], W_act)
        # inactive rows are exact identities
        inact = np.setdiff1d(np.arange(G), act)
        eye = np.eye(m, dtype=np.float32)
        assert all(np.array_equal(W_full[i], eye) for i in inact)

    @pytest.mark.parametrize("precision", ["single", "double"])
    def test_row_compaction_bit_identical_per_precision(self, precision):
        """The compaction contract holds in both precision modes.

        Each mode is bit-exact *within itself*; nothing is compared
        across modes (see the precision contract in docs).
        """
        dt = np.float32 if precision == "single" else np.float64
        rng = np.random.default_rng(77)
        dYb, d, rinv = (a.astype(dt) for a in make_batch(rng, 30, 12, 8, 0.3))
        W_full = letkf_transform(
            dYb, d, rinv, backend="lapack", precision=precision
        )
        assert W_full.dtype == dt
        act = np.flatnonzero(np.any(rinv > 0.0, axis=1))
        W_act = letkf_transform(
            np.ascontiguousarray(dYb[act]),
            np.ascontiguousarray(d[act]),
            np.ascontiguousarray(rinv[act]),
            backend="lapack",
            assume_active=True,
            precision=precision,
        )
        assert np.array_equal(W_full[act], W_act)

    def test_has_obs_passthrough_matches_derived(self):
        rng = np.random.default_rng(0)
        dYb, d, rinv = make_batch(rng, 30, 12, 8, 0.4)
        has_obs = np.any(rinv > 0.0, axis=1)
        W_a = letkf_transform(dYb, d, rinv, backend="lapack")
        W_b = letkf_transform(dYb, d, rinv, backend="lapack", has_obs=has_obs)
        assert np.array_equal(W_a, W_b)

    def test_obs_compaction_numerically_equivalent(self):
        rng = np.random.default_rng(1)
        dYb, d, rinv = make_batch(rng, 40, 20, 10, 1.0)
        rinv[:, 8:] = 0.0  # only 8 columns ever valid -> truncatable
        rinv[0, :8] = 1.0  # ... and at least one row uses all 8
        dYb_c, d_c, rinv_c = compact_observations(dYb, d, rinv)
        assert rinv_c.shape[1] == 8
        W_full = letkf_transform(dYb, d, rinv, backend="lapack")
        W_comp = letkf_transform(dYb_c, d_c, rinv_c, backend="lapack")
        np.testing.assert_allclose(W_full, W_comp, atol=1e-5)

    def test_compaction_noop_returns_inputs(self):
        rng = np.random.default_rng(2)
        dYb, d, rinv = make_batch(rng, 10, 6, 5, 1.0)
        rinv[...] = 1.0  # every column valid somewhere -> nothing to cut
        out = compact_observations(dYb, d, rinv)
        assert out[0] is dYb and out[1] is d and out[2] is rinv


class TestObservationSelection:
    def test_stable_order_and_padding_invalid(self):
        valid = np.array([[True, False, True, False], [False, False, True, False]])
        w = np.ones(4)
        sel, k = observation_selection(valid, w)
        assert k == 2
        # row 0 keeps its valid columns in stencil order
        assert sel[0].tolist() == [0, 2]
        # row 1's padding column is invalid (caller zeroes its weight)
        assert sel[1, 0] == 2

    def test_budget_keeps_highest_weight(self):
        valid = np.ones((1, 5), bool)
        w = np.array([0.1, 0.9, 0.5, 0.8, 0.2])
        sel, k = observation_selection(valid, w, obs_budget=2)
        assert k == 2
        assert sorted(sel[0].tolist()) == [1, 3]

    def test_no_truncation_possible(self):
        valid = np.ones((3, 4), bool)
        assert observation_selection(valid, np.ones(4)) is None


# ---------------------------------------------------------------------------
# solver: sparse path vs dense reference
# ---------------------------------------------------------------------------


class TestSolverSparsePath:
    @pytest.mark.parametrize("precision", ["single", "double"])
    @pytest.mark.parametrize("frac", [0.02, 0.15, 1.0])
    def test_bit_identical_on_active_cells(self, frac, precision):
        grid, cfg, ens, obs, hxb = solver_case(frac=frac)
        solver = LETKFSolver(grid, cfg, precision=precision)
        assert solver.dtype == (
            np.float32 if precision == "single" else np.float64
        )
        act = dilated_active_cells(solver, obs[0].valid)
        a_dense, d_dense = solver.analyze(
            {k: v.copy() for k, v in ens.items()}, obs, hxb, sparse=False
        )
        a_sparse, d_sparse = solver.analyze(
            {k: v.copy() for k, v in ens.items()}, obs, hxb,
            sparse=True, obs_compaction=False,
        )
        for v in ens:
            np.testing.assert_array_equal(a_dense[v][:, act], a_sparse[v][:, act])
        assert d_dense.n_points_updated == d_sparse.n_points_updated
        assert d_sparse.n_points_updated == int(np.count_nonzero(act))
        assert d_dense.obs_per_point_mean == pytest.approx(
            d_sparse.obs_per_point_mean
        )
        assert d_dense.obs_per_point_max == d_sparse.obs_per_point_max

    def test_inactive_cells_keep_background_bits(self):
        grid, cfg, ens, obs, hxb = solver_case(frac=0.05)
        solver = LETKFSolver(grid, cfg)
        act = dilated_active_cells(solver, obs[0].valid)
        ana, _ = solver.analyze(
            {k: v.copy() for k, v in ens.items()}, obs, hxb,
            sparse=True, obs_compaction=False,
        )
        # background bits survive everywhere outside the active set
        np.testing.assert_array_equal(ana["x"][:, ~act], ens["x"][:, ~act])

    def test_zero_coverage_is_exact_identity(self):
        grid, cfg, ens, obs, hxb = solver_case(frac=0.0)
        solver = LETKFSolver(grid, cfg)
        ana, diag = solver.analyze(
            {k: v.copy() for k, v in ens.items()}, obs, hxb
        )
        np.testing.assert_array_equal(ana["x"], ens["x"])
        assert diag.n_points_updated == 0
        assert diag.active_fraction == 0.0

    def test_obs_compaction_fast_mode_close(self):
        grid, cfg, ens, obs, hxb = solver_case(frac=0.1)
        solver = LETKFSolver(grid, cfg)
        a_ref, _ = solver.analyze(
            {k: v.copy() for k, v in ens.items()}, obs, hxb, sparse=False
        )
        a_fast, _ = solver.analyze(
            {k: v.copy() for k, v in ens.items()}, obs, hxb,
            sparse=True, obs_compaction=True,
        )
        for v in ens:
            np.testing.assert_allclose(a_ref[v], a_fast[v], atol=1e-4)

    def test_obs_budget_caps_local_volume(self):
        grid, cfg, ens, obs, hxb = solver_case(frac=1.0)
        solver = LETKFSolver(grid, cfg)
        ana, diag = solver.analyze(
            {k: v.copy() for k, v in ens.items()}, obs, hxb, obs_budget=4
        )
        assert np.all(np.isfinite(ana["x"]))
        assert diag.n_points_updated > 0

    def test_workspace_reused_and_runs_deterministic(self):
        grid, cfg, ens, obs, hxb = solver_case(frac=0.1)
        solver = LETKFSolver(grid, cfg)
        a1, _ = solver.analyze({k: v.copy() for k, v in ens.items()}, obs, hxb)
        ws = solver._workspace
        assert isinstance(ws, LETKFWorkspace)
        a2, _ = solver.analyze({k: v.copy() for k, v in ens.items()}, obs, hxb)
        # same buffers, bit-identical result: no stale-state contamination
        assert solver._workspace is ws
        for v in ens:
            np.testing.assert_array_equal(a1[v], a2[v])
        assert ws.nbytes > 0

    def test_ensemble_size_mismatch_recorded_and_warned_once(self):
        grid, cfg, ens, obs, hxb = solver_case(m=6, frac=0.1)
        from dataclasses import replace

        solver = LETKFSolver(grid, replace(cfg, ensemble_size=10))
        with pytest.warns(RuntimeWarning, match="10 members but"):
            _, diag = solver.analyze(
                {k: v.copy() for k, v in ens.items()}, obs, hxb
            )
        assert diag.ensemble_size_expected == 10
        assert diag.ensemble_size_actual == 6
        assert diag.ensemble_size_mismatch
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second call must stay silent
            _, diag2 = solver.analyze(
                {k: v.copy() for k, v in ens.items()}, obs, hxb
            )
        assert diag2.ensemble_size_mismatch


# ---------------------------------------------------------------------------
# distributed path shares the compacted transform
# ---------------------------------------------------------------------------


class TestDistributedBitCompat:
    @pytest.mark.parametrize("n_ranks", [1, 3])
    def test_partial_coverage_bit_equal_to_serial(self, n_ranks):
        grid, cfg, ens, obs, hxb = solver_case(frac=0.08)
        serial, _ = LETKFSolver(grid, cfg).analyze(
            {k: v.copy() for k, v in ens.items()},
            [o.copy() for o in obs], hxb, obs_compaction=False,
        )
        dist = DistributedLETKF(grid, cfg, n_ranks=n_ranks)
        parallel, _ = dist.analyze(
            {k: v.copy() for k, v in ens.items()}, [o.copy() for o in obs], hxb
        )
        for v in ens:
            np.testing.assert_array_equal(serial[v], parallel[v])


# ---------------------------------------------------------------------------
# obsope: shared assimilable-cells mask
# ---------------------------------------------------------------------------


class TestAssimilableMask:
    def make_op(self):
        grid = Grid(reduced_inner_domain(nx=10, nz=8))
        return grid, RadarObsOperator(grid, RadarConfig().reduced())

    def test_intersection_and_dilation(self):
        grid, op = self.make_op()
        lm = np.zeros(grid.nz, bool)
        lm[3:5] = True
        m0 = op.assimilable_mask(lm, 0)
        np.testing.assert_array_equal(m0, op.coverage & lm[:, None, None])
        m1 = op.assimilable_mask(lm, 1)
        dil = np.zeros(grid.nz, bool)
        dil[2:6] = True
        np.testing.assert_array_equal(m1, op.coverage & dil[:, None, None])
        # dilation clips at the domain edges
        lm_edge = np.zeros(grid.nz, bool)
        lm_edge[0] = True
        m_edge = op.assimilable_mask(lm_edge, 2)
        dil_edge = np.zeros(grid.nz, bool)
        dil_edge[:3] = True
        np.testing.assert_array_equal(m_edge, op.coverage & dil_edge[:, None, None])

    def test_cached_per_mask_and_reach(self):
        grid, op = self.make_op()
        lm = np.ones(grid.nz, bool)
        assert op.assimilable_mask(lm, 1) is op.assimilable_mask(lm, 1)
        assert op.assimilable_mask(lm, 1) is not op.assimilable_mask(lm, 2)

    def test_solver_reach_matches_stencil(self):
        grid, op = self.make_op()
        cfg = LETKFConfig(
            ensemble_size=4, localization_h=9000.0, localization_v=3000.0,
            analysis_zmin=0.0, analysis_zmax=20000.0,
        )
        solver = LETKFSolver(grid, cfg)
        offs = solver.stencil.offsets
        assert solver.stencil_reach_k == int(np.max(np.abs(offs[:, 0])))


# ---------------------------------------------------------------------------
# multicycle regression through the DA cycler
# ---------------------------------------------------------------------------


class TestMulticycleCoverage:
    def run_cycles(self, backend, frac, *, members=4, n_cycles=2, seed=13):
        scfg = ScaleConfig().reduced(nx=8, nz=6, members=members)
        model = ScaleRM(scfg)
        rng = np.random.default_rng(seed)
        ens = Ensemble.from_model(model, members, rng)
        lcfg = LETKFConfig(
            ensemble_size=members,
            localization_h=12000.0,
            localization_v=4000.0,
            analysis_zmin=0.0,
            analysis_zmax=20000.0,
            gross_error_refl_dbz=100.0,
            gross_error_doppler_ms=100.0,
            eigensolver="lapack",
        )
        obsope = RadarObsOperator(model.grid, RadarConfig().reduced())
        cycler = DACycler(model, ens, lcfg, obsope, seed=seed, backend=backend)
        mask = patch_mask(model.grid, frac)
        results = []
        for c in range(n_cycles):
            h = obsope.hxb_member(ens.state.member_view(0))
            obs = [
                GriddedObservations(
                    kind="reflectivity",
                    values=h["reflectivity"] + 1.0,
                    valid=mask.copy(),
                    error_std=5.0,
                    t_valid=30.0 * (c + 1),
                ),
                GriddedObservations(
                    kind="doppler",
                    values=h["doppler"],
                    valid=mask.copy(),
                    error_std=3.0,
                    t_valid=30.0 * (c + 1),
                ),
            ]
            results.append(cycler.run_cycle(obs))
        return cycler, results

    @pytest.mark.parametrize("frac", [0.0, 0.05, 1.0])
    def test_serial_vectorized_bit_identical(self, frac):
        runs = {}
        for backend in ("serial", "vectorized"):
            cycler, results = self.run_cycles(backend, frac)
            state = cycler.ensemble.state
            assert all(
                bool(np.all(np.isfinite(a))) for a in state.fields.values()
            )
            expect_mode = "free-run" if frac == 0.0 else "analysis"
            assert all(r.mode == expect_mode for r in results)
            if frac > 0.0:
                assert all(
                    r.diagnostics.n_points_updated > 0 for r in results
                )
            runs[backend] = state
        a, b = runs["serial"], runs["vectorized"]
        for v in a.fields:
            np.testing.assert_array_equal(a.fields[v], b.fields[v])
