"""Discrete-event kernel, real-time pipeline, outages, operations."""

import numpy as np
import pytest

from repro.config import WorkflowConfig
from repro.workflow import (
    EventQueue,
    OperationsSimulator,
    OutageModel,
    RealtimeWorkflow,
    Resource,
    StageCostModel,
    OLYMPICS,
    PARALYMPICS,
)


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        order = []
        q.schedule(5.0, lambda: order.append("b"))
        q.schedule(1.0, lambda: order.append("a"))
        q.schedule(9.0, lambda: order.append("c"))
        q.run()
        assert order == ["a", "b", "c"]

    def test_fifo_ties(self):
        q = EventQueue()
        order = []
        q.schedule(1.0, lambda: order.append(1))
        q.schedule(1.0, lambda: order.append(2))
        q.run()
        assert order == [1, 2]

    def test_cascading_events(self):
        q = EventQueue()
        hits = []

        def fire():
            hits.append(q.now)
            if q.now < 3:
                q.schedule_in(1.0, fire)

        q.schedule(0.0, fire)
        q.run()
        assert hits == [0.0, 1.0, 2.0, 3.0]

    def test_run_until(self):
        q = EventQueue()
        hits = []
        for t in (1.0, 2.0, 5.0):
            q.schedule(t, lambda t=t: hits.append(t))
        q.run(until=3.0)
        assert hits == [1.0, 2.0]
        assert q.now == 3.0
        assert len(q) == 1

    def test_cannot_schedule_past(self):
        q = EventQueue()
        q.schedule(2.0, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule(1.0, lambda: None)


class TestResource:
    def test_immediate_when_free(self):
        r = Resource("x")
        assert r.acquire(10.0, 5.0) == 10.0
        assert r.free_at == 15.0

    def test_queues_when_busy(self):
        r = Resource("x")
        r.acquire(0.0, 10.0)
        assert r.acquire(3.0, 2.0) == 10.0

    def test_utilization(self):
        r = Resource("x")
        r.acquire(0.0, 30.0)
        assert r.utilization(60.0) == pytest.approx(0.5)


class TestStageCostModel:
    def test_rain_increases_cost(self):
        cfg = WorkflowConfig()
        m_dry = StageCostModel(cfg, seed=0)
        m_wet = StageCostModel(cfg, seed=0)
        dry = np.mean([m_dry.draw(0.0).letkf for _ in range(100)])
        wet = np.mean([m_wet.draw(5000.0).letkf for _ in range(100)])
        assert wet > dry + 5.0

    def test_stage_means_near_paper(self):
        cfg = WorkflowConfig()
        m = StageCostModel(cfg, seed=1)
        draws = [m.draw(0.0) for _ in range(500)]
        assert np.mean([d.transfer for d in draws]) == pytest.approx(3.0, abs=1.0)
        fcsts = [d.forecast_30min for d in draws]
        assert np.percentile(fcsts, 50) == pytest.approx(120.0, abs=15.0)

    def test_part1_busy_under_cycle_interval(self):
        # stability requirement: <1-1> + <1-2> must fit in 30 s normally
        cfg = WorkflowConfig()
        m = StageCostModel(cfg, seed=2)
        busy = [m.draw(0.0).part1_busy for _ in range(200)]
        assert np.mean(busy) < cfg.cycle_interval_s


class TestRealtimeWorkflow:
    def test_single_cycle_breakdown(self):
        wf = RealtimeWorkflow(WorkflowConfig(), seed=0)
        rec = wf.run_cycle(0)
        assert rec.ok
        b = rec.breakdown()
        assert set(b) == {
            "file_creation",
            "jitdt_transfer",
            "letkf_and_wait",
            "forecast_30min_and_product",
        }
        assert all(v >= 0 for v in b.values())
        assert rec.time_to_solution == pytest.approx(sum(b.values()))

    def test_typical_tts_under_3min(self):
        wf = RealtimeWorkflow(WorkflowConfig(), seed=1)
        for c in range(100):
            wf.run_cycle(c)
        assert wf.deadline_fraction() > 0.9

    def test_outage_cycle_skipped(self):
        wf = RealtimeWorkflow(WorkflowConfig(), seed=2)
        rec = wf.run_cycle(0, in_outage=True)
        assert not rec.ok
        assert rec.skipped_reason == "outage"

    def test_part1_resource_serializes_cycles(self):
        wf = RealtimeWorkflow(WorkflowConfig(), seed=3)
        recs = [wf.run_cycle(c) for c in range(20)]
        ana_times = [r.t_analysis for r in recs if r.ok]
        assert all(t2 > t1 for t1, t2 in zip(ana_times, ana_times[1:]))

    def test_part2_slots_rotate(self):
        wf = RealtimeWorkflow(WorkflowConfig(), seed=4)
        for c in range(10):
            wf.run_cycle(c)
        assert all(s.acquisitions == 2 for s in wf.part2_slots)


class TestOutageModel:
    def test_mask_length(self):
        m = OutageModel(seed=0).mask(2.0, 30.0)
        assert len(m) == 2 * 2880

    def test_windows_merged_and_sorted(self):
        ws = OutageModel(seed=1).windows(20.0)
        for a, b in zip(ws, ws[1:]):
            assert a.end <= b.start  # merged: no overlap

    def test_availability_near_paper(self):
        # paper: net 26d 3h of 32 days of campaign (~82%)
        m = OutageModel(seed=2021).mask(32.0)
        avail = 1.0 - m.mean()
        assert 0.6 < avail < 0.95


class TestOperations:
    @pytest.fixture(scope="class")
    def campaign(self):
        return OperationsSimulator(seed=2021).run_campaign()

    def test_periods_match_paper_calendar(self):
        assert OLYMPICS.n_days == 20.0
        assert PARALYMPICS.n_days == 12.0
        assert OLYMPICS.enlargement_day == 7.0  # July 27

    def test_forecast_count_near_75k(self, campaign):
        total = sum(r.n_forecasts for r in campaign.values())
        # paper: 75,248 forecasts in ~32 days
        assert 55_000 < total < 92_160

    def test_97_percent_under_3min(self, campaign):
        tts = np.concatenate([r.tts_series for r in campaign.values()])
        tts = tts[np.isfinite(tts)]
        frac = np.mean(tts <= 180.0)
        assert 0.93 <= frac <= 0.995  # paper: ~97%

    def test_histogram_mass_matches_forecasts(self, campaign):
        r = campaign["Olympics"]
        edges, counts = r.histogram()
        assert counts.sum() == r.n_forecasts

    def test_rain_area_curves_present(self, campaign):
        r = campaign["Paralympics"]
        assert len(r.rain_area_1mm) == len(r.records)
        assert np.all(r.rain_area_20mm <= r.rain_area_1mm + 1e-9)

    def test_tts_correlates_with_rain(self, campaign):
        # Fig. 5: compute time grows with rain area
        r = campaign["Olympics"]
        ok = np.isfinite(r.tts_series)
        corr = np.corrcoef(r.tts_series[ok], r.rain_area_1mm[ok])[0, 1]
        assert corr > 0.2

    def test_outage_gaps_present(self, campaign):
        r = campaign["Olympics"]
        assert 0.02 < r.outage_fraction() < 0.4

    def test_net_production_time(self, campaign):
        total_s = sum(r.net_production_seconds for r in campaign.values())
        # paper: net 26 days 3 hours 4 minutes = ~2.26e6 s
        assert 1.5e6 < total_s < 2.6e6
