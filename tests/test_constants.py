import numpy as np
import pytest

from repro import constants as c


class TestPrecisionPolicy:
    def test_default_dtype_is_single(self):
        # the paper converts SCALE and LETKF to single precision
        assert c.DEFAULT_DTYPE == np.float32

    def test_as_dtype_accepts_floats(self):
        assert c.as_dtype("float32") == np.float32
        assert c.as_dtype(np.float64) == np.float64

    def test_as_dtype_rejects_integers(self):
        with pytest.raises(TypeError):
            c.as_dtype(np.int32)

    def test_as_dtype_rejects_complex(self):
        with pytest.raises(TypeError):
            c.as_dtype(np.complex64)


class TestThermodynamics:
    def test_cp_cv_consistency(self):
        assert c.CPDRY - c.CVDRY == pytest.approx(c.RDRY)

    def test_kappa(self):
        assert c.KAPPA == pytest.approx(c.RDRY / c.CPDRY)

    def test_latent_heats_additive(self):
        # sublimation = vaporization + fusion
        assert c.LHS0 == pytest.approx(c.LHV0 + c.LHF0)

    def test_epsilon(self):
        assert 0.6 < c.EPSVAP < 0.63


class TestSaturation:
    def test_triple_point_value(self):
        es = c.saturation_vapor_pressure(c.TEM00)
        assert es == pytest.approx(c.PSAT0, rel=1e-6)

    def test_monotone_in_temperature(self):
        t = np.linspace(230.0, 310.0, 50)
        es = c.saturation_vapor_pressure(t)
        assert np.all(np.diff(es) > 0)

    def test_ice_below_water_below_freezing(self):
        t = np.linspace(230.0, 270.0, 20)
        es_w = c.saturation_vapor_pressure(t)
        es_i = c.saturation_vapor_pressure(t, over_ice=True)
        assert np.all(es_i < es_w)

    def test_mixing_ratio_positive_and_reasonable(self):
        # near-surface summer conditions: qsat ~ 20-30 g/kg
        q = c.saturation_mixing_ratio(1.0e5, 300.0)
        assert 0.015 < q < 0.035

    def test_mixing_ratio_decreases_with_pressure(self):
        p = np.array([1.0e5, 8.0e4, 6.0e4])
        q = c.saturation_mixing_ratio(p, 280.0)
        assert np.all(np.diff(q) > 0)  # lower pressure -> larger mixing ratio

    def test_mixing_ratio_guard_at_low_pressure(self):
        # the es <= p/2 clip keeps q finite even at absurd conditions
        q = c.saturation_mixing_ratio(500.0, 320.0)
        assert np.isfinite(q)
        assert q > 0
