"""Convective diagnostics (CAPE, PW, echo tops, VIL ...)."""

import numpy as np
import pytest

from repro.model.diagnostics import (
    cape_cin,
    column_max_dbz,
    echo_top_height,
    precipitable_water,
    updraft_helicity_proxy,
    vertically_integrated_liquid,
)


class TestCAPE:
    def test_convective_sounding_has_cape(self, model):
        # the OSSE environment is conditionally unstable by construction
        st = model.initial_state()
        cape, cin = cape_cin(st)
        assert cape > 50.0
        assert cin <= 0.0

    def test_dry_stable_sounding_no_cape(self):
        from repro.config import ScaleConfig
        from repro.model import ScaleRM
        from repro.model.reference import Sounding

        stable = Sounding(rh_sfc=0.15, dtheta_dz_bl=6e-3, dtheta_dz_ft=6e-3)
        m = ScaleRM(ScaleConfig().reduced(nx=8, nz=16), stable, with_physics=False)
        cape, _ = cape_cin(m.initial_state())
        assert cape < 50.0

    def test_moistening_increases_cape(self, model):
        st = model.initial_state()
        cape0, _ = cape_cin(st)
        st.fields["qv"][0:2] *= 1.2
        cape1, _ = cape_cin(st)
        assert cape1 > cape0

    def test_single_column(self, model):
        st = model.initial_state()
        cape, cin = cape_cin(st, j=4, i=4)
        assert np.isfinite(cape) and np.isfinite(cin)


class TestColumnDiagnostics:
    def test_precipitable_water_plausible(self, model):
        pw = precipitable_water(model.initial_state())
        assert pw.shape == (model.grid.ny, model.grid.nx)
        # humid summer sounding: 20-70 mm
        assert 10.0 < pw.mean() < 80.0

    def test_echo_top_height(self):
        z_c = np.linspace(250, 15750, 16)
        dbz = np.full((16, 4, 4), -30.0)
        dbz[:8, 1, 1] = 30.0  # echo up to level 7
        tops = echo_top_height(dbz, z_c, threshold=18.0)
        assert tops[1, 1] == pytest.approx(z_c[7])
        assert tops[0, 0] == 0.0

    def test_vil_zero_without_precip(self, model):
        vil = vertically_integrated_liquid(model.initial_state())
        assert np.allclose(vil, 0.0)

    def test_vil_positive_with_rain(self, model):
        st = model.initial_state()
        st.fields["qr"][2:5] = 1e-3
        vil = vertically_integrated_liquid(st)
        assert np.all(vil > 0)

    def test_column_max(self):
        dbz = np.zeros((4, 2, 2))
        dbz[2, 1, 0] = 55.0
        assert column_max_dbz(dbz)[1, 0] == 55.0

    def test_updraft_helicity_zero_at_rest(self, model):
        uh = updraft_helicity_proxy(model.initial_state())
        assert np.allclose(uh, 0.0, atol=1e-6)

    def test_updraft_helicity_detects_rotation(self, model):
        st = model.initial_state()
        g = model.grid
        # a rotating updraft: solid-body vortex + updraft at mid-levels
        Z, Y, X = g.meshgrid()
        x0 = y0 = 64000.0
        dens = st.dens
        st.fields["momx"] += (dens * (-(Y - y0) * 1e-4)).astype(g.dtype)
        st.fields["momy"] += (dens * ((X - x0) * 1e-4)).astype(g.dtype)
        st.fields["momz"][3:8] = 2.0
        uh = updraft_helicity_proxy(st)
        j, i = g.column_index(x0, y0)
        assert uh[j, i] > 0.0

    def test_storm_diagnostics_on_nature(self, developed_nature):
        from repro.radar.reflectivity import dbz_from_state

        dbz = dbz_from_state(developed_nature)
        tops = echo_top_height(dbz.astype(np.float64), developed_nature.grid.z_c)
        vil = vertically_integrated_liquid(developed_nature)
        assert tops.max() > 2000.0  # the storm has depth
        assert vil.max() > 0.05
