"""Fractions Skill Score."""

import numpy as np
import pytest

from repro.verify.fss import fractions, fss, fss_profile, useful_scale


def blob(ny, nx, cy, cx, r=2.5, amp=40.0):
    jj, ii = np.mgrid[0:ny, 0:nx]
    return amp * np.exp(-((jj - cy) ** 2 + (ii - cx) ** 2) / (2 * r**2))


class TestFractions:
    def test_window_zero_identity(self):
        f = np.random.default_rng(0).random((8, 8)) > 0.5
        assert np.array_equal(fractions(f, 0), f.astype(float))

    def test_uniform_field(self):
        f = np.ones((6, 6))
        assert np.allclose(fractions(f, 2), 1.0)

    def test_single_event_spreads(self):
        f = np.zeros((9, 9))
        f[4, 4] = 1.0
        fr = fractions(f, 1)
        assert fr[4, 4] == pytest.approx(1 / 9)
        assert fr[0, 0] == 0.0

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(1)
        f = (rng.random((10, 12)) > 0.6).astype(float)
        w = 2
        fr = fractions(f, w)
        # brute force with edge truncation
        for j, i in [(0, 0), (5, 6), (9, 11)]:
            j0, j1 = max(0, j - w), min(10, j + w + 1)
            i0, i1 = max(0, i - w), min(12, i + w + 1)
            assert fr[j, i] == pytest.approx(f[j0:j1, i0:i1].mean())

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            fractions(np.zeros((3, 3)), -1)


class TestFSS:
    def test_perfect_forecast(self):
        ob = blob(16, 16, 8, 8)
        assert fss(ob, ob, 20.0, 2) == pytest.approx(1.0)

    def test_no_events_nan(self):
        z = np.zeros((8, 8))
        assert np.isnan(fss(z, z, 10.0, 2))

    def test_complete_miss_zero(self):
        fc = np.zeros((16, 16))
        fc[2, 2] = 50.0
        ob = np.zeros((16, 16))
        ob[13, 13] = 50.0
        assert fss(fc, ob, 20.0, 0) == pytest.approx(0.0)

    def test_displaced_feature_recovers_with_window(self):
        # the defining FSS property: a displaced forecast scores ~0
        # pointwise but recovers once the window spans the displacement
        fc = blob(24, 24, 12, 10)
        ob = blob(24, 24, 12, 14)
        prof = fss_profile(fc, ob, 20.0, windows=(0, 2, 6))
        assert prof[0] < 0.3
        assert prof[6] > prof[2] > prof[0]
        assert prof[6] > 0.7

    def test_monotone_in_window(self):
        rng = np.random.default_rng(2)
        fc = rng.random((20, 20)) * 40
        ob = rng.random((20, 20)) * 40
        prof = fss_profile(fc, ob, 25.0, windows=(0, 1, 2, 4, 8))
        vals = [v for v in prof.values() if np.isfinite(v)]
        assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fss(np.zeros((4, 4)), np.zeros((5, 5)), 1.0, 1)


class TestUsefulScale:
    def test_perfect_forecast_scale_zero(self):
        ob = blob(16, 16, 8, 8)
        assert useful_scale(ob, ob, 20.0) == 0

    def test_displaced_needs_larger_scale(self):
        fc = blob(24, 24, 12, 9)
        ob = blob(24, 24, 12, 15)
        s = useful_scale(fc, ob, 20.0)
        assert s is not None and s >= 2

    def test_hopeless_returns_none(self):
        fc = np.zeros((16, 16))
        ob = blob(16, 16, 8, 8)
        assert useful_scale(fc, ob, 20.0, max_window=4) is None
