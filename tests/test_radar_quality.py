"""Radar QC: clutter injection/filtering, despeckle, non-blocking vmpi."""

import numpy as np
import pytest

from repro.comm.vmpi import VirtualComm
from repro.radar.quality import (
    clutter_filter,
    despeckle,
    inject_clutter,
    quality_control,
)


@pytest.fixture()
def clean_scan(small_grid, small_radar_config, developed_nature):
    from repro.radar.pawr import PAWRSimulator

    return PAWRSimulator(small_radar_config, small_grid, seed=9).scan(
        developed_nature, 0.0
    )


class TestClutter:
    def test_injection_adds_strong_still_gates(self, clean_scan, rng):
        before = clean_scan.dbz.copy()
        inject_clutter(clean_scan, rng=rng)
        changed = clean_scan.dbz != before
        assert np.any(changed)
        # clutter signature: strong and near-zero Doppler
        assert np.median(clean_scan.dbz[changed]) > 30.0
        assert np.median(np.abs(clean_scan.doppler[changed])) < 0.5

    def test_filter_removes_injected_clutter(self, clean_scan, rng):
        before = clean_scan.dbz.copy()
        inject_clutter(clean_scan, rng=rng)
        injected = clean_scan.dbz != before
        v_clean = clutter_filter(clean_scan.dbz, clean_scan.doppler, clean_scan.valid)
        removed = clean_scan.valid & ~v_clean
        # most injected gates caught
        frac_caught = np.count_nonzero(removed & injected) / max(
            np.count_nonzero(injected & clean_scan.valid), 1
        )
        assert frac_caught > 0.5

    def test_filter_spares_weather(self, clean_scan):
        # without clutter, the filter must remove almost nothing
        v_clean = clutter_filter(clean_scan.dbz, clean_scan.doppler, clean_scan.valid)
        removed = np.count_nonzero(clean_scan.valid & ~v_clean)
        assert removed < 0.01 * clean_scan.valid.sum()


class TestDespeckle:
    def test_removes_isolated_gate(self):
        dbz = np.full((1, 1, 20), -30.0, np.float32)
        dbz[0, 0, 10] = 35.0  # lone speckle
        valid = np.ones_like(dbz, bool)
        v = despeckle(dbz, valid)
        assert not v[0, 0, 10]

    def test_keeps_contiguous_echo(self):
        dbz = np.full((1, 1, 20), -30.0, np.float32)
        dbz[0, 0, 8:14] = 35.0
        valid = np.ones_like(dbz, bool)
        v = despeckle(dbz, valid)
        assert v[0, 0, 8:14].all()

    def test_clear_air_untouched(self):
        dbz = np.full((2, 3, 10), -30.0, np.float32)
        valid = np.ones_like(dbz, bool)
        assert despeckle(dbz, valid).all()


class TestQualityControl:
    def test_counts_reported(self, clean_scan, rng):
        inject_clutter(clean_scan, rng=rng)
        v, counts = quality_control(clean_scan)
        assert set(counts) == {"clutter", "speckle"}
        assert counts["clutter"] > 0
        assert v.sum() < clean_scan.valid.sum()


class TestNonblockingVMPI:
    def test_isend_irecv_roundtrip(self):
        comm = VirtualComm(2)
        r0, r1 = comm.rank_handle(0), comm.rank_handle(1)
        data = np.arange(8, dtype=np.float32)
        req_s = r0.Isend(data, dest=1)
        out = np.empty(8, dtype=np.float32)
        req_r = r1.Irecv(out, source=0)
        assert req_s.test()
        assert not req_r.test()
        req_r.wait()
        assert req_r.test()
        assert np.array_equal(out, data)

    def test_irecv_before_send_resolves_at_wait(self):
        comm = VirtualComm(2)
        r0, r1 = comm.rank_handle(0), comm.rank_handle(1)
        out = np.empty(3)
        req = r1.Irecv(out, source=0)
        r0.Send(np.array([1.0, 2.0, 3.0]), dest=1)
        req.wait()
        assert np.array_equal(out, [1.0, 2.0, 3.0])

    def test_sendrecv_ring(self):
        n = 4
        comm = VirtualComm(n)
        outs = [np.empty(1) for _ in range(n)]
        # all sends post first (rank order), then receives resolve
        for r in range(n):
            comm.rank_handle(r).Send(np.array([float(r)]), dest=(r + 1) % n)
        for r in range(n):
            comm.rank_handle(r).Recv(outs[r], source=(r - 1) % n)
        for r in range(n):
            assert outs[r][0] == (r - 1) % n

    def test_sendrecv_pairwise(self):
        comm = VirtualComm(2)
        r0, r1 = comm.rank_handle(0), comm.rank_handle(1)
        a_out, b_out = np.empty(1), np.empty(1)
        r0.Send(np.array([10.0]), dest=1)
        r1.Sendrecv(np.array([20.0]), 0, b_out, 0)
        r0.Recv(a_out, source=1)
        assert a_out[0] == 20.0 and b_out[0] == 10.0
