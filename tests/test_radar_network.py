"""Multi-radar networks (the Expo-2025 dual-coverage extension)."""

import numpy as np
import pytest

from repro.config import RadarConfig
from repro.letkf.qc import GriddedObservations
from repro.radar.network import RadarNetwork, dual_kanto_network


@pytest.fixture()
def network(small_grid):
    a, b = dual_kanto_network(RadarConfig().reduced())
    return RadarNetwork(radars=(a, b), grid=small_grid)


class TestCoverage:
    def test_dual_beats_single(self, small_grid, network):
        single = RadarNetwork(radars=(RadarConfig().reduced(),), grid=small_grid)
        assert network.coverage_fraction() > single.coverage_fraction()

    def test_union_includes_each_site(self, small_grid, network):
        for m in network._masks:
            assert np.all(network.coverage[m])

    def test_overlap_subset_of_coverage(self, network):
        assert np.all(network.coverage[network.overlap])

    def test_overlap_nonempty_for_dual_kanto(self, network):
        # the two 60-km circles intersect in the domain middle
        assert np.count_nonzero(network.overlap) > 0

    def test_empty_network_rejected(self, small_grid):
        with pytest.raises(ValueError):
            RadarNetwork(radars=(), grid=small_grid)


class TestMerge:
    def make_obs(self, grid, value, err=5.0):
        return GriddedObservations(
            kind="reflectivity",
            values=np.full(grid.shape, value, np.float32),
            valid=np.ones(grid.shape, bool),
            error_std=err,
        )

    def test_merged_valid_is_union(self, small_grid, network):
        obs = [self.make_obs(small_grid, 20.0), self.make_obs(small_grid, 20.0)]
        merged = network.merge_observations(obs)
        assert np.array_equal(merged.valid, network.coverage)

    def test_overlap_averages_values(self, small_grid, network):
        obs = [self.make_obs(small_grid, 10.0), self.make_obs(small_grid, 30.0)]
        merged = network.merge_observations(obs)
        ov = network.overlap
        if np.any(ov):
            assert np.allclose(merged.values[ov], 20.0, atol=1e-4)

    def test_dual_coverage_shrinks_error(self, small_grid, network):
        obs = [self.make_obs(small_grid, 20.0), self.make_obs(small_grid, 20.0)]
        merged = network.merge_observations(obs)
        assert merged.error_std == pytest.approx(5.0 / np.sqrt(2))

    def test_kind_mismatch_rejected(self, small_grid, network):
        o1 = self.make_obs(small_grid, 20.0)
        o2 = GriddedObservations(
            kind="doppler",
            values=np.zeros(small_grid.shape, np.float32),
            valid=np.ones(small_grid.shape, bool),
            error_std=3.0,
        )
        with pytest.raises(ValueError):
            network.merge_observations([o1, o2])

    def test_count_mismatch_rejected(self, small_grid, network):
        with pytest.raises(ValueError):
            network.merge_observations([self.make_obs(small_grid, 20.0)])


class TestAdaptiveInflation:
    def test_underdispersed_raises_rho(self):
        from repro.letkf.adaptive import AdaptiveInflation

        infl = AdaptiveInflation(rho=1.0, gain=0.5)
        # innovations much larger than spread+obs error -> inflate
        innov = np.full(100, 5.0)
        hpb = np.full(100, 1.0)
        rho = infl.update(innov, hpb, obs_error_std=1.0)
        assert rho > 1.0

    def test_overdispersed_lowers_rho(self):
        from repro.letkf.adaptive import AdaptiveInflation

        infl = AdaptiveInflation(rho=1.5, gain=0.5)
        innov = np.full(100, 0.5)
        hpb = np.full(100, 4.0)
        rho = infl.update(innov, hpb, obs_error_std=0.4)
        assert rho < 1.5

    def test_bounds_respected(self):
        from repro.letkf.adaptive import AdaptiveInflation

        infl = AdaptiveInflation(rho=1.0, gain=1.0, rho_max=2.0)
        rho = infl.update(np.full(10, 100.0), np.full(10, 0.1), 1.0)
        assert rho <= 2.0

    def test_empty_innovations_noop(self):
        from repro.letkf.adaptive import AdaptiveInflation

        infl = AdaptiveInflation(rho=1.2)
        assert infl.update(np.array([]), np.array([]), 1.0) == 1.2

    def test_apply_scales_spread(self):
        from repro.letkf.adaptive import AdaptiveInflation

        infl = AdaptiveInflation(rho=4.0)
        pert = np.ones((5, 3))
        out = infl.apply(pert)
        assert np.allclose(out, 2.0)
