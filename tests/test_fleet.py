"""Multi-domain fleet operations: tenants, pool, deadline dispatch.

The contracts under test:

* the prepare/resolve split leaves ``run_cycle`` byte-identical, so a
  1-tenant dedicated fleet equals the stand-alone workflow;
* the shared pool's earliest-free selection and the scheduler's
  priority are pure functions of (seed, offered load, deadlines) —
  fleet runs replay bit-identically, invariant to asyncio wakeup
  interleaving (Hypothesis);
* :meth:`StageCostModel.estimate` is the RNG-free scheduling oracle
  its docstring promises;
* a killed fleet resumes all tenants bit-identically from the
  tenant-keyed ``state_dict``.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import WorkflowConfig
from repro.fleet import (
    ComputePool,
    DomainTenant,
    FleetConfig,
    FleetReport,
    FleetScheduler,
    storm_rain,
)
from repro.report import fleet_text
from repro.resilience.faults import StreamFaultInjector, StreamFaultRates
from repro.telemetry import Telemetry
from repro.workflow.realtime import RealtimeWorkflow
from repro.workflow.scheduler import StageCostModel


def make_fleet(
    n=2, *, seed=2021, budget=0.9, policy="deadline", stream_rates=None,
    telemetry=None, interleave=None,
):
    cfg = WorkflowConfig()
    tenants = []
    for i in range(n):
        si = None
        if stream_rates is not None:
            si = StreamFaultInjector(
                stream_rates, seed=seed + 1000 * i,
                cycle_interval_s=cfg.cycle_interval_s,
            )
        tenants.append(DomainTenant(
            f"t{i}", cfg, seed=seed + 1000 * i, stream_injector=si,
            telemetry=telemetry,
        ))
    pool = ComputePool.for_tenants(n, budget_fraction=budget)
    return FleetScheduler(
        tenants, pool=pool, policy=policy, telemetry=telemetry,
        interleave=interleave,
    )


class TestCostEstimate:
    def test_estimate_consumes_no_rng_draws(self):
        model = StageCostModel(WorkflowConfig(), seed=9)
        before = model.rng.bit_generator.state
        for rain in (0.0, 500.0, 8000.0):
            model.estimate(rain)
        assert model.rng.bit_generator.state == before
        # and the draw stream is unchanged by interleaved estimates
        ref = StageCostModel(WorkflowConfig(), seed=9)
        model.estimate(123.0)
        assert model.draw(10.0) == ref.draw(10.0)

    def test_estimate_is_deterministic_and_rain_monotone(self):
        model = StageCostModel(WorkflowConfig(), seed=1)
        a, b = model.estimate(1000.0), model.estimate(1000.0)
        assert a == b
        quiet, stormy = model.estimate(0.0), model.estimate(8000.0)
        assert stormy.letkf > quiet.letkf
        assert stormy.forecast_30min > quiet.forecast_30min

    def test_part2_busy_property(self):
        c = StageCostModel(WorkflowConfig(), seed=1).estimate(0.0)
        assert c.part2_busy == c.forecast_30min + c.product_write


class TestComputePool:
    def test_earliest_free_with_index_tiebreak(self):
        pool = ComputePool(part1_blocks=2, part2_slots=2)
        assert pool.acquire_part1(0.0, 10.0) == 0.0   # block 0
        assert pool.acquire_part1(0.0, 5.0) == 0.0    # block 1
        # block 1 frees first (t=5) and must win over block 0 (t=10)
        assert pool.acquire_part1(0.0, 1.0) == 5.0
        assert pool.part1[1].acquisitions == 2

    def test_for_tenants_sizing(self):
        full = ComputePool.for_tenants(1)
        assert (len(full.part1), len(full.part2)) == (1, 5)
        shared = ComputePool.for_tenants(4, budget_fraction=0.9)
        assert (len(shared.part1), len(shared.part2)) == (4, 18)
        floor = ComputePool.for_tenants(1, budget_fraction=0.01)
        assert (len(floor.part1), len(floor.part2)) == (1, 1)

    def test_state_roundtrip(self):
        pool = ComputePool(part1_blocks=2, part2_slots=3)
        pool.acquire_part1(0.0, 7.0)
        pool.acquire_part2(1.0, 3.0)
        clone = ComputePool(part1_blocks=2, part2_slots=3)
        clone.load_state_dict(json.loads(json.dumps(pool.state_dict())))
        assert clone.state_dict() == pool.state_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputePool(part1_blocks=0)
        with pytest.raises(ValueError):
            ComputePool.for_tenants(0)
        with pytest.raises(ValueError):
            ComputePool.for_tenants(2, budget_fraction=1.5)


class TestSingleTenantIdentity:
    def test_dedicated_fleet_equals_standalone_workflow(self):
        cfg = WorkflowConfig()
        si = StreamFaultInjector(
            StreamFaultRates.all_off(), seed=7,
            cycle_interval_s=cfg.cycle_interval_s,
        )
        wf = RealtimeWorkflow(cfg, seed=7, stream_injector=si)
        rain = storm_rain()
        for k in range(150):
            wf.run_cycle(k, rain_area_km2=rain(0, k))

        tenant = DomainTenant("t0", cfg, seed=7)
        fleet = FleetScheduler([tenant])   # pool=None: dedicated resources
        fleet.run(150, rain=rain)
        assert tenant.records == wf.records

    def test_run_cycle_is_prepare_then_resolve(self):
        cfg = WorkflowConfig()
        a = RealtimeWorkflow(cfg, seed=3)
        b = RealtimeWorkflow(cfg, seed=3)
        for k in range(40):
            ra = a.run_cycle(k, rain_area_km2=25.0 * k)
            rb = b.resolve_cycle(b.prepare_cycle(k, rain_area_km2=25.0 * k))
            assert ra == rb


class TestFleetDeterminism:
    def test_replay_is_bit_identical(self):
        rates = StreamFaultRates(scan_delay=0.1, scan_drop=0.02)
        a = make_fleet(3, stream_rates=rates)
        b = make_fleet(3, stream_rates=rates)
        rain = storm_rain()
        a.run(80, rain=rain)
        b.run(80, rain=rain)
        assert a.dispatch_log == b.dispatch_log
        for ta, tb in zip(a.tenants, b.tenants):
            assert ta.records == tb.records

    def test_policies_differ_under_contention(self):
        rain = storm_rain()
        d = make_fleet(4, policy="deadline")
        r = make_fleet(4, policy="round-robin")
        rep_d = d.run(150, rain=rain)
        rep_r = r.run(150, rain=rain)
        assert d.dispatch_log != r.dispatch_log
        # the headline benchmark gate, in miniature
        assert rep_d.deadline_fraction > rep_r.deadline_fraction

    def test_dispatch_prefers_tight_feasible_slack(self):
        fleet = make_fleet(2)
        # moderate storm on tenant 0 only: its predicted finish is later
        # but still feasible, so its slack is smaller and it must
        # dispatch first every round
        fleet.run(10, rain=lambda i, k: 4000.0 if i == 0 else 0.0)
        rounds = {}
        for k, tid, slack in fleet.dispatch_log:
            rounds.setdefault(k, []).append((tid, slack))
        for k, row in rounds.items():
            assert row[0][0] == "t0", (k, row)
            assert 0.0 <= row[0][1] <= row[1][1]

    def test_predicted_infeasible_cycle_dispatches_last(self):
        fleet = make_fleet(2, budget=1.0)
        # extreme storm on tenant 0: predicted to miss its deadline
        # outright (negative slack), so it must NOT starve a
        # still-feasible tenant — classic-EDF overload inversion,
        # prevented by the feasibility-first sort key
        fleet.run(10, rain=lambda i, k: 20000.0 if i == 0 else 0.0)
        rounds = {}
        for k, tid, slack in fleet.dispatch_log:
            rounds.setdefault(k, []).append((tid, slack))
        mixed = 0
        for k, row in rounds.items():
            signs = [slack >= 0.0 for _, slack in row]
            if signs[0] != signs[1]:
                mixed += 1
                # whenever exactly one tenant is still feasible, it
                # dispatches first, however small its slack
                assert signs[0] and not signs[1], (k, row)
        assert mixed >= 3   # the scenario actually exercised the rule

    def test_unique_ids_and_policy_validated(self):
        cfg = WorkflowConfig()
        t = [DomainTenant("same", cfg, seed=1), DomainTenant("same", cfg, seed=2)]
        with pytest.raises(ValueError):
            FleetScheduler(t)
        with pytest.raises(ValueError):
            FleetScheduler([DomainTenant("a", cfg)], policy="fifo")
        with pytest.raises(ValueError):
            FleetConfig(policy="fifo")
        with pytest.raises(ValueError):
            FleetConfig(n_tenants=0)


class TestInterleavingInvariance:
    """Satellite: dispatch order is invariant to asyncio wakeups."""

    @staticmethod
    def _run_with_yields(yield_counts: list[int], rounds: int = 12):
        """Fleet run whose prepare tasks take extra event-loop hops.

        ``yield_counts`` drives how many times each prepare-checkpoint
        re-enqueues itself; distinct draws realize genuinely different
        task-completion interleavings of the same fleet round.
        """
        calls = {"n": 0}

        async def interleave(tag: str) -> None:
            n = yield_counts[calls["n"] % len(yield_counts)] if yield_counts else 0
            calls["n"] += 1
            for _ in range(n):
                await asyncio.sleep(0)

        rates = StreamFaultRates(scan_delay=0.15, scan_drop=0.05)
        fleet = make_fleet(
            3, stream_rates=rates, interleave=interleave,
        )
        fleet.run(rounds, rain=storm_rain())
        return (
            fleet.dispatch_log,
            [tuple(t.records) for t in fleet.tenants],
        )

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    def test_dispatch_invariant_to_wakeup_interleaving(self, yields):
        baseline = self._run_with_yields([0])
        perturbed = self._run_with_yields(yields)
        assert perturbed == baseline


class TestFleetCheckpoint:
    """Satellite: killed fleet resumes all tenants bit-identically."""

    def _fleet(self, telemetry=None):
        rates = StreamFaultRates(
            scan_delay=0.1, scan_reorder=0.05, scan_duplicate=0.05,
            scan_drop=0.02,
        )
        return make_fleet(3, stream_rates=rates, telemetry=telemetry)

    def test_kill_resume_bit_identical(self):
        rain = storm_rain()
        straight = self._fleet()
        straight.run(90, rain=rain)

        killed = self._fleet()
        killed.run(40, rain=rain)
        # kill: serialize through JSON, as an on-disk checkpoint would
        blob = json.dumps(killed.state_dict())

        resumed = self._fleet()
        resumed.load_state_dict(json.loads(blob))
        assert resumed.round == 40
        resumed.run(50, rain=rain)

        assert resumed.dispatch_log == straight.dispatch_log
        for tr, ts in zip(resumed.tenants, straight.tenants):
            assert tr.records == ts.records
            assert tr.state_dict() == ts.state_dict()

    def test_state_dict_is_tenant_keyed(self):
        fleet = self._fleet()
        fleet.run(5)
        d = fleet.state_dict()
        assert set(d["tenants"]) == {"t0", "t1", "t2"}
        for tid, ts in d["tenants"].items():
            assert ts["tenant_id"] == tid
            assert "ingest" in ts          # PR-6 layout, extended
            assert "part1_done" in ts

    def test_mismatched_checkpoint_rejected(self):
        fleet = self._fleet()
        fleet.run(3)
        d = fleet.state_dict()
        other = make_fleet(2)
        with pytest.raises(ValueError):
            other.load_state_dict(d)
        wrong_policy = dict(d, policy="round-robin")
        with pytest.raises(ValueError):
            self._fleet().load_state_dict(wrong_policy)


class TestFleetTelemetryAndReport:
    def test_per_tenant_rollups_and_fleet_text(self):
        tel = Telemetry()
        fleet = make_fleet(2, telemetry=tel)
        report = fleet.run(30, rain=storm_rain())
        assert isinstance(report, FleetReport)

        reg = tel.metrics
        for tid in ("t0", "t1"):
            total = reg.get("counter", "fleet_cycles_total", tenant=tid)
            ok = reg.get("counter", "fleet_cycles_ok_total", tenant=tid)
            assert total is not None and total.value == 30
            assert ok is not None and ok.value > 0
            wf = reg.get("counter", "workflow_cycles_total", tenant=tid)
            assert wf is not None and wf.value == 30

        text = fleet_text(report)
        assert "t0" in text and "t1" in text and "aggregate" in text

        from repro.report import metrics_snapshot_text

        snap = metrics_snapshot_text(reg)
        assert "fleet rollup" in snap and "[t0]" in snap

    def test_report_round_trips_to_json(self):
        report = make_fleet(2).run(10)
        d = json.loads(json.dumps(report.as_dict()))
        assert d["n_tenants"] == 2
        assert len(d["tenants"]) == 2
        assert 0.0 <= d["deadline_fraction"] <= 1.0


class TestFromConfig:
    def test_from_config_builds_runnable_fleet(self):
        fleet = FleetScheduler.from_config(
            FleetConfig(n_tenants=2, budget_fraction=0.8, seed=11)
        )
        assert [t.tenant_id for t in fleet.tenants] == ["tenant-0", "tenant-1"]
        assert len(fleet.pool.part1) == 2
        report = fleet.run(5)
        assert report.n_produced == 10
