"""Shared fixtures: small-scale configs and pre-built expensive objects.

Everything here runs at reduced scale (see DESIGN.md "scaling policy"):
the scientific knobs stay at paper values, the mesh/ensemble are small
enough for second-scale tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import LETKFConfig, RadarConfig, ScaleConfig
from repro.grid import Grid
from repro.model import ScaleRM, convective_sounding, warm_bubble
from repro.model.reference import ReferenceState


@pytest.fixture(autouse=True)
def no_leaked_shm_segments():
    """Every test must unlink the shared-memory segments it creates.

    The sweep is the first-class runtime leak check from
    :mod:`repro.checks.concurrency`: it compares this repo's segment
    namespace (``reproshm-*``) before and after each test, on disk and
    in the creation registry — a leak in any test fails *that* test
    rather than surfacing as a resource-tracker warning at interpreter
    exit.
    """
    from repro.checks.concurrency import SegmentLeakMonitor

    monitor = SegmentLeakMonitor()
    yield
    leaked = monitor.check()
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture(scope="session")
def small_scale_config() -> ScaleConfig:
    return ScaleConfig().reduced(nx=16, nz=12, members=8)


@pytest.fixture(scope="session")
def small_grid(small_scale_config) -> Grid:
    return Grid(small_scale_config.domain)


@pytest.fixture(scope="session")
def reference(small_grid) -> ReferenceState:
    return ReferenceState(small_grid, convective_sounding())


@pytest.fixture(scope="session")
def small_letkf_config() -> LETKFConfig:
    # paper knobs, reduced ensemble; analysis range widened to cover the
    # 12-level test grid
    return LETKFConfig(
        ensemble_size=8, analysis_zmin=0.0, analysis_zmax=20000.0, eigensolver="lapack"
    )


@pytest.fixture(scope="session")
def small_radar_config() -> RadarConfig:
    return RadarConfig().reduced(n_elevations=10, n_azimuths=48, n_gates=90)


@pytest.fixture()
def model(small_scale_config) -> ScaleRM:
    return ScaleRM(small_scale_config, convective_sounding())


@pytest.fixture()
def bubble_state(model):
    st = model.initial_state()
    warm_bubble(st, x0=64000.0, y0=64000.0, amplitude=3.0)
    return st


@pytest.fixture(scope="session")
def developed_nature(small_scale_config):
    """A nature-run state with active convection (session-cached)."""
    m = ScaleRM(small_scale_config, convective_sounding(cape_factor=1.1))
    st = m.initial_state()
    warm_bubble(st, x0=40000, y0=40000, amplitude=5.0, moisture_boost=0.3)
    warm_bubble(st, x0=85000, y0=90000, amplitude=4.0, moisture_boost=0.3)
    st = m.integrate(st, 2100.0)
    return st


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
