"""X-band attenuation and KDP-based correction."""

import numpy as np
import pytest

from repro.radar.attenuation import (
    attenuate_scan,
    correct_attenuation_kdp,
    specific_attenuation,
)
from repro.radar.dualpol import KDP_COEFF


class TestSpecificAttenuation:
    def test_zero_without_rain(self):
        assert specific_attenuation(np.zeros(4)).sum() == 0.0

    def test_linear_in_rain(self):
        k1 = specific_attenuation(np.array([1e-3]))
        k2 = specific_attenuation(np.array([2e-3]))
        assert k2[0] == pytest.approx(2 * k1[0])

    def test_plausible_magnitude(self):
        # 1 g/m^3 rain at X band: ~0.5 dB/km one way
        k = specific_attenuation(np.array([1e-3]))
        assert 0.1 < k[0] < 2.0


class TestAttenuateScan:
    def test_no_rain_no_attenuation(self):
        dbz = np.full((3, 10), 30.0)
        out = attenuate_scan(dbz, np.zeros_like(dbz), 500.0)
        assert np.allclose(out, dbz)

    def test_gates_behind_rain_attenuated(self):
        dbz = np.full((1, 20), 40.0)
        rain = np.zeros((1, 20))
        rain[0, 5:10] = 3e-3  # a heavy cell at gates 5-9
        out = attenuate_scan(dbz, rain, 1000.0)
        # gates before the cell untouched, gates behind attenuated
        assert np.allclose(out[0, :6], 40.0)
        assert np.all(out[0, 10:] < 40.0 - 1.0)

    def test_attenuation_accumulates_monotonically(self):
        dbz = np.full((1, 30), 40.0)
        rain = np.full((1, 30), 2e-3)
        out = attenuate_scan(dbz, rain, 1000.0)
        assert np.all(np.diff(out[0]) <= 1e-12)

    def test_floor_respected(self):
        dbz = np.full((1, 100), 10.0)
        rain = np.full((1, 100), 1e-2)  # extreme rain
        out = attenuate_scan(dbz, rain, 1000.0, floor_dbz=-30.0)
        assert out.min() >= -30.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            attenuate_scan(np.zeros((2, 4)), np.zeros((2, 5)), 100.0)


class TestKDPCorrection:
    def test_perfect_kdp_inverts_attenuation(self):
        dbz = np.full((2, 25), 35.0)
        rain = np.zeros((2, 25))
        rain[:, 5:12] = 4e-3
        att = attenuate_scan(dbz, rain, 1000.0)
        kdp = KDP_COEFF * rain
        rec = correct_attenuation_kdp(att, kdp, 1000.0)
        assert np.allclose(rec, dbz, atol=1e-9)

    def test_noisy_kdp_still_helps(self):
        rng = np.random.default_rng(0)
        dbz = np.full((1, 40), 38.0)
        rain = np.zeros((1, 40))
        rain[0, 8:20] = 3e-3
        att = attenuate_scan(dbz, rain, 1000.0)
        kdp = KDP_COEFF * rain + rng.normal(0, 0.05, rain.shape)
        rec = correct_attenuation_kdp(att, kdp, 1000.0)
        err_before = np.abs(att - dbz).mean()
        err_after = np.abs(rec - dbz).mean()
        assert err_after < 0.3 * err_before


class TestInstrumentIntegration:
    def test_attenuated_scan_weaker_behind_storm(
        self, small_grid, small_radar_config, developed_nature
    ):
        from repro.radar.pawr import PAWRSimulator

        clean = PAWRSimulator(small_radar_config, small_grid, seed=5).scan(
            developed_nature, 0.0
        )
        attenuated = PAWRSimulator(
            small_radar_config, small_grid, seed=5, attenuation=True, kdp_correction=False
        ).scan(developed_nature, 0.0)
        # attenuation only removes signal
        sel = clean.valid & attenuated.valid
        assert np.all(attenuated.dbz[sel] <= clean.dbz[sel] + 1e-3)
        assert attenuated.dbz[sel].mean() < clean.dbz[sel].mean()

    def test_kdp_correction_recovers_signal(
        self, small_grid, small_radar_config, developed_nature
    ):
        from repro.radar.pawr import PAWRSimulator

        clean = PAWRSimulator(small_radar_config, small_grid, seed=5).scan(
            developed_nature, 0.0
        )
        raw = PAWRSimulator(
            small_radar_config, small_grid, seed=5, attenuation=True, kdp_correction=False
        ).scan(developed_nature, 0.0)
        corrected = PAWRSimulator(
            small_radar_config, small_grid, seed=5, attenuation=True, kdp_correction=True
        ).scan(developed_nature, 0.0)
        # judge the correction where attenuation actually bit (> 1 dB);
        # elsewhere both signals differ only by KDP estimation noise
        affected = clean.valid & (clean.dbz - raw.dbz > 1.0)
        assert np.count_nonzero(affected) > 0
        err_raw = np.abs(raw.dbz[affected].astype(float) - clean.dbz[affected]).mean()
        err_cor = np.abs(corrected.dbz[affected].astype(float) - clean.dbz[affected]).mean()
        assert err_cor < err_raw
