import numpy as np
import pytest

from repro.model.state import HYDROMETEORS, PROGNOSTIC_VARS, WATER_SPECIES, ModelState


class TestStateLayout:
    def test_prognostic_set(self):
        assert "dens_p" in PROGNOSTIC_VARS
        assert "rhot_p" in PROGNOSTIC_VARS
        # 6-category water: vapor + 5 hydrometeors (Table 3 microphysics)
        assert WATER_SPECIES == ("qv", "qc", "qr", "qi", "qs", "qg")
        assert len(HYDROMETEORS) == 5

    def test_zeros_shapes(self, model):
        st = model.initial_state()
        g = model.grid
        assert st.fields["dens_p"].shape == g.shape
        assert st.fields["momz"].shape == g.shape_w
        assert st.fields["qv"].dtype == g.dtype

    def test_initial_winds_from_reference(self, model):
        st = model.initial_state()
        u, v, w = st.velocities()
        # reference sounding has nonzero u
        assert np.all(np.abs(u[0] - model.reference.u_c[0]) < 0.1)
        assert np.allclose(w, 0.0)

    def test_copy_is_deep(self, model):
        st = model.initial_state()
        st2 = st.copy()
        st2.fields["qv"] += 1.0
        assert not np.allclose(st.fields["qv"], st2.fields["qv"])


class TestDiagnostics:
    def test_pressure_matches_reference_at_rest(self, model):
        st = model.initial_state()
        p = st.pressure()
        ref_p = model.reference.pres_c[:, None, None]
        assert np.allclose(p, ref_p, rtol=2e-3)

    def test_temperature_reasonable(self, model):
        st = model.initial_state()
        t = st.temperature()
        assert t.max() < 320.0
        assert t.min() > 180.0

    def test_theta_equals_reference_at_rest(self, model):
        st = model.initial_state()
        th = st.theta
        assert np.allclose(th, model.reference.theta_c[:, None, None], rtol=1e-5)

    def test_total_water_path_positive(self, model):
        st = model.initial_state()
        assert st.total_water_path() > 0

    def test_dry_mass_zero_at_rest(self, model):
        st = model.initial_state()
        assert st.dry_mass() == pytest.approx(0.0)


class TestAnalysisRoundTrip:
    def test_to_from_analysis_identity(self, model):
        st = model.initial_state()
        rng = np.random.default_rng(1)
        st.fields["qv"] *= 1.0 + 0.1 * rng.random(model.grid.shape).astype(np.float32)
        ana = st.to_analysis()
        assert set(ana) == set(ModelState.ANALYSIS_VARS)
        st2 = st.copy()
        st2.from_analysis(ana)
        for v in ("momx", "momy", "rhot_p", "qv"):
            assert np.allclose(st.fields[v], st2.fields[v], atol=1e-4), v

    def test_from_analysis_clips_negative_water(self, model):
        st = model.initial_state()
        ana = st.to_analysis()
        ana["qr"] = ana["qr"] - 1.0  # drive negative
        st.from_analysis(ana)
        assert np.all(st.fields["qr"] >= 0.0)

    def test_from_analysis_updates_wind(self, model):
        st = model.initial_state()
        ana = st.to_analysis()
        ana["u"] = ana["u"] + 5.0
        st.from_analysis(ana)
        u, _, _ = st.velocities()
        assert np.allclose(u, ana["u"], atol=1e-3)

    def test_momz_boundaries_zero_after_analysis(self, model):
        st = model.initial_state()
        ana = st.to_analysis()
        ana["w"] = ana["w"] + 2.0
        st.from_analysis(ana)
        assert np.allclose(st.fields["momz"][0], 0.0)
        assert np.allclose(st.fields["momz"][-1], 0.0)
