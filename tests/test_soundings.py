"""Sounding library and tabular file I/O."""

import numpy as np
import pytest

from repro.model.diagnostics import cape_cin
from repro.model.soundings import (
    SOUNDING_NAMES,
    fit_sounding,
    named_sounding,
    read_sounding_file,
    write_sounding_file,
)


class TestRegistry:
    def test_all_names_resolve(self):
        for name in SOUNDING_NAMES:
            snd = named_sounding(name)
            assert snd.theta(0.0) > 250.0

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="available"):
            named_sounding("mars-dust-storm")

    def test_winter_stabler_than_summer(self):
        w = named_sounding("stable-winter")
        s = named_sounding("kanto-summer")
        # low-level theta gradient
        gw = (w.theta(1000.0) - w.theta(0.0)) / 1000.0
        gs = (s.theta(1000.0) - s.theta(0.0)) / 1000.0
        assert gw > gs

    def test_heavy_rain_moister(self):
        assert (
            named_sounding("kanto-heavy-rain").rh_sfc
            > named_sounding("stable-winter").rh_sfc
        )

    def test_squall_line_has_shear(self):
        sq = named_sounding("squall-line")
        u0, _ = sq.wind(np.array([0.0]))
        u6, _ = sq.wind(np.array([6000.0]))
        assert u6[0] - u0[0] > 10.0

    def test_cape_ordering(self):
        """CAPE: heavy-rain environment > stable winter."""
        from repro.config import ScaleConfig
        from repro.model import ScaleRM

        capes = {}
        for name in ("kanto-heavy-rain", "stable-winter"):
            m = ScaleRM(
                ScaleConfig().reduced(nx=8, nz=20), named_sounding(name), with_physics=False
            )
            capes[name], _ = cape_cin(m.initial_state())
        assert capes["kanto-heavy-rain"] > capes["stable-winter"] + 100.0


class TestFileIO:
    def test_roundtrip_table(self, tmp_path):
        snd = named_sounding("kanto-summer")
        p = tmp_path / "snd.txt"
        write_sounding_file(snd, p)
        table = read_sounding_file(p)
        assert table.shape == (60, 5)
        assert np.all(np.diff(table[:, 0]) > 0)
        # theta in the file matches the analytic profile
        assert np.allclose(table[:, 1], snd.theta(table[:, 0]), rtol=1e-5)

    def test_malformed_rejected(self, tmp_path):
        p = tmp_path / "bad.txt"
        p.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="malformed"):
            read_sounding_file(p)

    def test_empty_rejected(self, tmp_path):
        p = tmp_path / "empty.txt"
        p.write_text("# nothing\n")
        with pytest.raises(ValueError, match="empty"):
            read_sounding_file(p)

    def test_nonmonotone_heights_rejected(self, tmp_path):
        p = tmp_path / "z.txt"
        p.write_text("0 300 0.8 0 0\n100 301 0.8 0 0\n50 302 0.8 0 0\n")
        with pytest.raises(ValueError, match="increase"):
            read_sounding_file(p)


class TestFit:
    def test_fit_recovers_analytic_profile(self, tmp_path):
        snd = named_sounding("squall-line")
        p = tmp_path / "s.txt"
        write_sounding_file(snd, p)
        fitted = fit_sounding(read_sounding_file(p))
        z = np.linspace(0, 15000, 40)
        assert np.allclose(fitted.theta(z), snd.theta(z), atol=1.0)
        u_f, _ = fitted.wind(z)
        u_o, _ = snd.wind(z)
        assert np.allclose(u_f, u_o, atol=1.0)
        assert fitted.rh_sfc == pytest.approx(snd.rh_sfc, abs=0.1)

    def test_fitted_sounding_runs_the_model(self, tmp_path):
        from repro.config import ScaleConfig
        from repro.model import ScaleRM

        snd = named_sounding("kanto-summer")
        p = tmp_path / "s.txt"
        write_sounding_file(snd, p)
        fitted = fit_sounding(read_sounding_file(p))
        m = ScaleRM(ScaleConfig().reduced(nx=8, nz=10), fitted, with_physics=False)
        st = m.integrate(m.initial_state(), 60.0)
        assert np.all(np.isfinite(st.fields["momz"]))
