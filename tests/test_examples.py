"""The example scripts must run (the fast ones, end to end)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, "-W", "ignore", str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=EXAMPLES.parent,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_olympics_operations(self):
        out = run_example("olympics_operations.py")
        assert "under 3 min" in out
        assert "75,248" in out  # the paper reference is printed

    def test_realtime_pipeline(self):
        out = run_example("realtime_pipeline.py")
        assert "time-to-solution" in out
        assert "meets the < 3 min deadline: True" in out

    def test_multiparameter_radar(self):
        out = run_example("multiparameter_radar.py")
        assert "dual-pol moments" in out
        assert "dual-site coverage" in out

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "pattern correlation" in out
        assert "part <2>" in out

    @pytest.mark.slow
    def test_heavy_rain_osse_fast(self, tmp_path):
        out = run_example("heavy_rain_osse.py", "--fast", timeout=400.0)
        assert "threat score" in out

    @pytest.mark.slow
    def test_da_diagnostics(self):
        out = run_example("da_diagnostics.py", timeout=400.0)
        assert "Desroziers" in out
        assert "SAL" in out
