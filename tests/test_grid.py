import numpy as np
import pytest

from repro.config import reduced_inner_domain
from repro.grid import Grid


@pytest.fixture(scope="module")
def grid():
    return Grid(reduced_inner_domain(nx=16, nz=10))


class TestGridGeometry:
    def test_shapes(self, grid):
        assert grid.shape == (10, 16, 16)
        assert grid.shape_w == (11, 16, 16)

    def test_vertical_levels_cover_domain(self, grid):
        assert grid.z_f[0] == 0.0
        assert grid.z_f[-1] == pytest.approx(16400.0)
        assert np.all(np.diff(grid.z_c) > 0)

    def test_face_center_consistency(self, grid):
        assert np.allclose(grid.z_c, 0.5 * (grid.z_f[1:] + grid.z_f[:-1]))

    def test_zeros_dtype_and_shape(self, grid):
        assert grid.zeros().shape == grid.shape
        assert grid.zeros(face="z").shape == grid.shape_w
        assert grid.zeros().dtype == grid.dtype

    def test_zeros_rejects_bad_face(self, grid):
        with pytest.raises(ValueError):
            grid.zeros(face="q")

    def test_column_index_roundtrip(self, grid):
        j, i = grid.column_index(grid.x_c[5], grid.y_c[7])
        assert (j, i) == (7, 5)

    def test_column_index_clipped(self, grid):
        assert grid.column_index(-1e9, 1e9) == (15, 0)

    def test_level_index(self, grid):
        assert grid.level_index(0.0) == 0
        assert grid.level_index(1e9) == grid.nz - 1
        k = grid.level_index(grid.z_c[4])
        assert k == 4

    def test_horizontal_distance_center(self, grid):
        d = grid.horizontal_distance(64000.0, 64000.0)
        assert d.shape == (16, 16)
        # nearest column centers are within one cell diagonal
        assert d.min() < np.hypot(grid.dx, grid.dy)


class TestDifferenceOperators:
    def test_ddx_linear_field(self, grid):
        # periodic stencil is exact for sin waves
        k = 2 * np.pi / grid.domain.extent_x
        f = np.sin(k * grid.x_c)[None, None, :] * np.ones(grid.shape)
        df = grid.ddx_c(f)
        expected = k * np.cos(k * grid.x_c)
        # 2nd-order centered: modified wavenumber sin(k dx)/dx
        keff = np.sin(k * grid.dx) / grid.dx
        assert np.allclose(df[0, 0], keff / k * expected, rtol=1e-4, atol=1e-8)

    def test_ddy_matches_ddx_by_symmetry(self, grid):
        rng = np.random.default_rng(0)
        f = rng.normal(size=grid.shape)
        fx = grid.ddx_c(f)
        fy = grid.ddy_c(np.swapaxes(f, 1, 2))
        assert np.allclose(np.swapaxes(fx, 1, 2), fy)

    def test_ddz_linear_profile_exact(self, grid):
        f = (2.0 * grid.z_c)[:, None, None] * np.ones(grid.shape)
        df = grid.ddz_c(f)
        assert np.allclose(df, 2.0, rtol=1e-5)

    def test_laplacian_of_constant_is_zero(self, grid):
        f = np.full(grid.shape, 7.0)
        assert np.allclose(grid.laplacian_h(f), 0.0)

    def test_laplacian_negative_at_maximum(self, grid):
        f = np.zeros(grid.shape)
        f[5, 8, 8] = 1.0
        lap = grid.laplacian_h(f)
        assert lap[5, 8, 8] < 0
        assert lap[5, 8, 7] > 0
