"""Domain decomposition and halo exchange."""

import numpy as np
import pytest

from repro.comm.halo import DomainDecomposition, gather_field, scatter_field


def laplacian_periodic(f):
    return (
        np.roll(f, -1, -1) + np.roll(f, 1, -1) + np.roll(f, -1, -2) + np.roll(f, 1, -2) - 4 * f
    )


class TestDecomposition:
    def test_even_division_required(self):
        with pytest.raises(ValueError):
            DomainDecomposition(10, 10, 3, 2)

    def test_halo_width_validated(self):
        with pytest.raises(ValueError):
            DomainDecomposition(8, 8, 2, 2, halo=0)
        with pytest.raises(ValueError):
            DomainDecomposition(8, 8, 4, 4, halo=3)  # 2-wide tiles < halo

    def test_neighbors_periodic(self):
        d = DomainDecomposition(12, 12, 3, 3)
        nb = d.neighbors(0)  # top-left rank (ry=0, rx=0)
        assert nb["west"] == d.rank_of(0, 2)
        assert nb["south"] == d.rank_of(2, 0)

    def test_tiles_partition_domain(self):
        d = DomainDecomposition(12, 8, 2, 2)
        covered = np.zeros((12, 8), dtype=int)
        for t in d.tiles:
            covered[t.j0 : t.j1, t.i0 : t.i1] += 1
        assert np.all(covered == 1)


class TestScatterGather:
    def test_roundtrip(self):
        d = DomainDecomposition(8, 12, 2, 3)
        rng = np.random.default_rng(0)
        f = rng.normal(size=(8, 12))
        assert np.allclose(gather_field(d, scatter_field(d, f)), f)

    def test_roundtrip_with_leading_axes(self):
        d = DomainDecomposition(8, 8, 2, 2)
        rng = np.random.default_rng(1)
        f = rng.normal(size=(3, 5, 8, 8))
        assert np.allclose(gather_field(d, scatter_field(d, f)), f)

    def test_shape_mismatch(self):
        d = DomainDecomposition(8, 8, 2, 2)
        with pytest.raises(ValueError):
            scatter_field(d, np.zeros((7, 8)))


class TestHaloExchange:
    @pytest.mark.parametrize("py,px", [(1, 2), (2, 2), (2, 4), (4, 4)])
    def test_stencil_equals_global(self, py, px):
        # the fundamental contract: local stencils on exchanged halos
        # reproduce the global periodic stencil exactly
        ny = nx = 16
        d = DomainDecomposition(ny, nx, py, px, halo=2)
        rng = np.random.default_rng(7)
        f = rng.normal(size=(ny, nx))

        tiles = scatter_field(d, f)
        d.exchange_halos(tiles)

        h = d.halo
        local_results = []
        for tile in tiles:
            lap = laplacian_periodic(tile)  # wraps within tile, but the
            # interior only touches halo cells, which are now correct
            local_results.append(lap)
        # reassemble interiors
        out = gather_field(d, local_results)
        assert np.allclose(out, laplacian_periodic(f), atol=1e-12)

    def test_3d_fields(self):
        d = DomainDecomposition(8, 8, 2, 2, halo=1)
        rng = np.random.default_rng(3)
        f = rng.normal(size=(5, 8, 8))  # e.g. (nz, ny, nx)
        tiles = scatter_field(d, f)
        d.exchange_halos(tiles)
        out = gather_field(d, [laplacian_periodic(t) for t in tiles])
        assert np.allclose(out, laplacian_periodic(f), atol=1e-12)

    def test_corner_cells_filled(self):
        # corners require the two-phase ordering; a single-rank-pair bug
        # would leave them zero
        d = DomainDecomposition(8, 8, 2, 2, halo=2)
        f = np.ones((8, 8))
        tiles = scatter_field(d, f)
        d.exchange_halos(tiles)
        for tile in tiles:
            assert np.all(tile == 1.0)

    def test_traffic_accounted(self):
        d = DomainDecomposition(16, 16, 2, 2, halo=2)
        tiles = scatter_field(d, np.ones((16, 16)))
        d.exchange_halos(tiles)
        # 4 ranks x 4 messages each
        assert d.comm.stats.messages == 16
        assert d.comm.stats.bytes_moved > 0

    def test_wrong_tile_count(self):
        d = DomainDecomposition(8, 8, 2, 2)
        with pytest.raises(ValueError):
            d.exchange_halos([np.zeros(d.local_shape())])
