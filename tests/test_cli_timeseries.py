"""CLI commands and the Fig.-5 time-series panel renderer."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.viz.timeseries import render_tts_panel


class TestTimeseriesPanel:
    def make_series(self, n=500, seed=0):
        rng = np.random.default_rng(seed)
        tts = rng.normal(145, 8, n)
        tts[100:140] = np.nan  # outage
        a1 = rng.uniform(0, 8000, n)
        a20 = a1 * 0.1
        return tts, a1, a20

    def test_panel_shape(self):
        tts, a1, a20 = self.make_series()
        img = render_tts_panel(tts, a1, a20, width=600, height=200)
        assert img.shape == (200, 600, 3)
        assert img.dtype == np.uint8

    def test_outage_band_rendered_gray(self):
        tts, a1, a20 = self.make_series()
        img = render_tts_panel(tts, a1, a20)
        # gray pixels exist (the outage shading)
        assert np.any(np.all(img == 205, axis=-1))

    def test_tts_dots_rendered(self):
        tts, a1, a20 = self.make_series()
        img = render_tts_panel(tts, a1, a20)
        assert np.any(np.all(img == 20, axis=-1))

    def test_rain_curves_rendered(self):
        tts, a1, a20 = self.make_series()
        img = render_tts_panel(tts, a1, a20)
        assert np.any(np.all(img == (90, 200, 220), axis=-1))
        assert np.any(np.all(img == (40, 80, 200), axis=-1))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_tts_panel(np.zeros(5), np.zeros(4), np.zeros(5))


class TestCLI:
    def test_parser_commands(self):
        p = build_parser()
        for cmd in ("table1", "table2", "table3", "fig5", "calibrate",
                    "quick-cycle", "serve"):
            args = p.parse_args([cmd])
            assert args.command == cmd

    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "BDA2021" in out

    def test_table2_output(self, capsys):
        assert main(["table2"]) == 0
        assert "factor=0.95" in capsys.readouterr().out

    def test_table3_output(self, capsys):
        assert main(["table3"]) == 0
        assert "HEVI" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig42"])
