"""Motion estimation and advection nowcasting."""

import numpy as np
import pytest

from repro.nowcast import AdvectionNowcast, estimate_motion, semi_lagrangian_advect
from repro.nowcast.motion import MotionField


def blob(ny, nx, cy, cx, radius=3.0, amp=40.0):
    jj, ii = np.mgrid[0:ny, 0:nx]
    r2 = (jj - cy) ** 2 + (ii - cx) ** 2
    return amp * np.exp(-r2 / (2 * radius**2)) - 30.0


class TestMotionEstimation:
    def test_recovers_known_translation(self):
        prev = blob(32, 32, 14, 12)
        curr = blob(32, 32, 14, 15)  # moved +3 cells in x
        m = estimate_motion(prev, curr, dx=1000.0, dt=300.0, max_shift=4)
        # motion where the echo is: ~3000 m / 300 s = 10 m/s eastward
        core = m.u[10:19, 10:20]
        assert np.median(core) == pytest.approx(10.0, abs=4.0)
        assert abs(np.median(m.v[10:19, 10:20])) < 4.0

    def test_no_echo_no_motion(self):
        f = np.full((32, 32), -30.0)
        m = estimate_motion(f, f, dx=1000.0, dt=300.0)
        assert np.allclose(m.u, 0.0)
        assert np.allclose(m.v, 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            estimate_motion(np.zeros((4, 4)), np.zeros((5, 5)), dx=1.0, dt=1.0)

    def test_bad_dt(self):
        with pytest.raises(ValueError):
            estimate_motion(np.zeros((8, 8)), np.zeros((8, 8)), dx=1.0, dt=0.0)

    def test_speed_property(self):
        m = MotionField(u=np.full((2, 2), 3.0), v=np.full((2, 2), 4.0), dx=1.0, dt=1.0)
        assert np.allclose(m.speed, 5.0)


class TestSemiLagrangian:
    def test_zero_lead_identity(self):
        f = blob(24, 24, 12, 12)
        m = MotionField(u=np.full((24, 24), 10.0), v=np.zeros((24, 24)), dx=1000.0, dt=1.0)
        out = semi_lagrangian_advect(f, m, 0.0)
        assert np.allclose(out, f, atol=1e-10)

    def test_translates_peak(self):
        f = blob(32, 32, 16, 10)
        m = MotionField(u=np.full((32, 32), 10.0), v=np.zeros((32, 32)), dx=1000.0, dt=1.0)
        out = semi_lagrangian_advect(f, m, 400.0)  # 4 cells east
        j, i = np.unravel_index(np.argmax(out), out.shape)
        assert i == pytest.approx(14, abs=1)
        assert j == pytest.approx(16, abs=1)

    def test_fill_outside_domain(self):
        f = blob(16, 16, 8, 8)
        m = MotionField(u=np.full((16, 16), 100.0), v=np.zeros((16, 16)), dx=100.0, dt=1.0)
        out = semi_lagrangian_advect(f, m, 100.0, fill=-30.0)  # 100-cell shift
        assert np.allclose(out, -30.0)

    def test_negative_lead_rejected(self):
        f = np.zeros((4, 4))
        m = MotionField(u=np.zeros((4, 4)), v=np.zeros((4, 4)), dx=1.0, dt=1.0)
        with pytest.raises(ValueError):
            semi_lagrangian_advect(f, m, -1.0)

    def test_amplitude_preserved_in_interior(self):
        f = blob(32, 32, 16, 16)
        m = MotionField(u=np.full((32, 32), 5.0), v=np.zeros((32, 32)), dx=1000.0, dt=1.0)
        out = semi_lagrangian_advect(f, m, 200.0)
        assert out.max() == pytest.approx(f.max(), rel=0.05)


class TestAdvectionNowcast:
    def test_beats_persistence_for_moving_echo(self):
        # an echo translating at constant speed: the nowcast must track
        # it, persistence must not
        from repro.verify import PersistenceForecast, contingency, threat_score

        speed_cells = 2  # per frame
        frames = [blob(32, 32, 16, 6 + k * speed_cells) for k in range(6)]
        nc = AdvectionNowcast(frames[0], frames[1], dx=1000.0, dt=300.0)
        pers = PersistenceForecast(frames[1])

        lead = 3 * 300.0  # 3 frames ahead -> frame index 4
        truth = frames[4]
        ts_nc = threat_score(contingency(nc.at_lead(lead), truth, 0.0))
        ts_pe = threat_score(contingency(pers.at_lead(lead), truth, 0.0))
        assert ts_nc > ts_pe

    def test_lead_zero_is_latest_obs(self):
        f0, f1 = blob(16, 16, 8, 6), blob(16, 16, 8, 8)
        nc = AdvectionNowcast(f0, f1, dx=1000.0, dt=300.0)
        assert np.array_equal(nc(0.0), f1)
