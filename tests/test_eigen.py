import numpy as np
import pytest

from repro.eigen import eigh_batched, eigh_dispatch, eigh_kedv, tridiagonalize_batched
from repro.eigen.kedv import ql_implicit_batched


def random_symmetric(rng, B, k, dtype=np.float64):
    A = rng.normal(size=(B, k, k)).astype(dtype)
    return (A + np.swapaxes(A, 1, 2)) * 0.5


def letkf_like(rng, B, k, no, dtype=np.float32):
    """(m-1)I + Yb^T R^-1 Yb matrices — what the LETKF actually solves."""
    Yb = rng.normal(size=(B, no, k)).astype(dtype)
    A = np.einsum("bok,bol->bkl", Yb, Yb)
    idx = np.arange(k)
    A[:, idx, idx] += k - 1
    return A


class TestTridiagonalization:
    @pytest.mark.parametrize("k", [2, 3, 5, 16])
    def test_reconstruction(self, k):
        rng = np.random.default_rng(0)
        A = random_symmetric(rng, 4, k)
        d, e, Q = tridiagonalize_batched(A)
        T = np.zeros_like(A)
        for b in range(4):
            T[b] = np.diag(d[b]) + np.diag(e[b], 1) + np.diag(e[b], -1)
        rec = Q @ T @ np.swapaxes(Q, 1, 2)
        assert np.allclose(rec, A, atol=1e-12)

    def test_q_orthogonal(self):
        rng = np.random.default_rng(1)
        A = random_symmetric(rng, 3, 12)
        _, _, Q = tridiagonalize_batched(A)
        eye = np.eye(12)
        for b in range(3):
            assert np.allclose(Q[b].T @ Q[b], eye, atol=1e-12)

    def test_already_tridiagonal_unchanged(self):
        k = 8
        d0 = np.arange(1.0, k + 1)
        e0 = np.full(k - 1, 0.5)
        A = np.diag(d0) + np.diag(e0, 1) + np.diag(e0, -1)
        d, e, Q = tridiagonalize_batched(A[None])
        assert np.allclose(d[0], d0)
        assert np.allclose(np.abs(e[0]), np.abs(e0))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            tridiagonalize_batched(np.zeros((2, 3, 4)))


class TestQLIteration:
    def test_diagonal_input_is_fixed_point(self):
        d = np.array([[3.0, 1.0, 2.0]])
        e = np.zeros((1, 2))
        Q = np.eye(3)[None].copy()
        w, V = ql_implicit_batched(d, e, Q)
        assert np.allclose(np.sort(w[0]), [1.0, 2.0, 3.0])
        assert np.allclose(np.abs(V[0]), np.eye(3))

    def test_2x2_analytic(self):
        # [[2, 1], [1, 2]] -> eigenvalues 1, 3
        d = np.array([[2.0, 2.0]])
        e = np.array([[1.0]])
        Q = np.eye(2)[None].copy()
        w, _ = ql_implicit_batched(d, e, Q)
        assert np.allclose(np.sort(w[0]), [1.0, 3.0])


class TestKeDVAgainstLAPACK:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_random_batch(self, dtype):
        rng = np.random.default_rng(2)
        A = random_symmetric(rng, 20, 15).astype(dtype)
        w1, V1 = eigh_kedv(A)
        w0, _ = eigh_batched(A)
        tol = 1e-4 if dtype == np.float32 else 1e-10
        assert np.allclose(w1, w0, atol=tol * 20)

    def test_letkf_matrices_f32(self):
        # the exact matrix family of the production workload
        rng = np.random.default_rng(3)
        A = letkf_like(rng, 64, 20, 37)
        w1, V1 = eigh_kedv(A)
        w0, _ = eigh_batched(A)
        anorm = np.abs(A).sum(axis=2).max(axis=1)
        assert np.max(np.abs(w1 - w0) / anorm[:, None]) < 1e-5

    def test_spd_eigenvalues_positive(self):
        rng = np.random.default_rng(4)
        A = letkf_like(rng, 16, 10, 5)
        w, _ = eigh_kedv(A)
        assert np.all(w > 0)

    def test_eigenvectors_orthonormal(self):
        rng = np.random.default_rng(5)
        A = random_symmetric(rng, 8, 12).astype(np.float32)
        _, V = eigh_kedv(A)
        gram = np.swapaxes(V, 1, 2) @ V
        assert np.allclose(gram, np.eye(12), atol=1e-5)

    def test_reconstruction(self):
        rng = np.random.default_rng(6)
        A = random_symmetric(rng, 8, 10)
        w, V = eigh_kedv(A)
        rec = V @ (w[:, :, None] * np.swapaxes(V, 1, 2))
        assert np.allclose(rec, A, atol=1e-10)

    def test_eigenvalues_ascending(self):
        rng = np.random.default_rng(7)
        A = random_symmetric(rng, 8, 9)
        w, _ = eigh_kedv(A)
        assert np.all(np.diff(w, axis=1) >= -1e-12)

    def test_degenerate_spectrum(self):
        # identity + rank-1: (k-1)-fold degenerate eigenvalue
        rng = np.random.default_rng(8)
        k = 20
        v = rng.normal(size=k).astype(np.float32)
        A = (np.eye(k, dtype=np.float32) * 5.0 + np.outer(v, v))[None]
        w, V = eigh_kedv(A)
        w0 = np.linalg.eigvalsh(A[0])
        assert np.allclose(w[0], w0, atol=1e-3)

    def test_single_matrix_unbatched(self):
        rng = np.random.default_rng(9)
        A = random_symmetric(rng, 1, 6)[0]
        w, V = eigh_kedv(A)
        assert w.shape == (6,)
        assert V.shape == (6, 6)

    def test_k2_and_k3(self):
        for k in (2, 3):
            rng = np.random.default_rng(k)
            A = random_symmetric(rng, 5, k)
            w1, _ = eigh_kedv(A)
            w0, _ = eigh_batched(A)
            assert np.allclose(w1, w0, atol=1e-10)


class TestDispatch:
    def test_backends(self):
        rng = np.random.default_rng(10)
        A = random_symmetric(rng, 4, 8)
        for b in ("lapack", "kedv"):
            w, V = eigh_dispatch(A, backend=b)
            assert w.shape == (4, 8)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            eigh_dispatch(np.eye(3)[None], backend="gpu")
