"""Cross-validation: event-driven vs recurrence pipeline implementations.

Two independent implementations of the Fig.-2 pipeline semantics — the
explicit discrete-event one and the max-plus recurrence — must produce
identical cycle records when fed identical cost draws.
"""

import numpy as np
import pytest

from repro.config import WorkflowConfig
from repro.workflow import RealtimeWorkflow, StageCostModel
from repro.workflow.realtime_events import EventDrivenWorkflow


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_implementations_agree(seed):
    cfg = WorkflowConfig()
    rng = np.random.default_rng(seed + 100)
    n = 80
    rain = rng.uniform(0, 6000, n)
    outage = rng.random(n) < 0.1

    wf_rec = RealtimeWorkflow(cfg, StageCostModel(cfg, seed=seed))
    for c in range(n):
        wf_rec.run_cycle(c, rain_area_km2=float(rain[c]), in_outage=bool(outage[c]))

    wf_ev = EventDrivenWorkflow(cfg, StageCostModel(cfg, seed=seed))
    recs_ev = wf_ev.run(n, rain=rain, outage=outage)

    assert len(wf_rec.records) == len(recs_ev) == n
    for a, b in zip(wf_rec.records, recs_ev):
        assert a.cycle == b.cycle
        assert a.ok == b.ok
        if a.ok:
            assert a.t_file == pytest.approx(b.t_file)
            assert a.t_transferred == pytest.approx(b.t_transferred)
            assert a.t_analysis == pytest.approx(b.t_analysis)
            assert a.t_product == pytest.approx(b.t_product)
        else:
            assert a.skipped_reason == b.skipped_reason


def test_event_driven_resource_contention():
    # under saturating load both part-1 queueing and slot rotation engage
    cfg = WorkflowConfig()
    wf = EventDrivenWorkflow(cfg, StageCostModel(cfg, seed=3))
    recs = wf.run(30, rain=np.full(30, 8000.0))
    ok = [r for r in recs if r.ok]
    ana = [r.t_analysis for r in ok]
    assert all(b > a for a, b in zip(ana, ana[1:]))
    assert all(s.acquisitions > 0 for s in wf.part2_slots)


def test_event_queue_processes_all_events():
    cfg = WorkflowConfig()
    wf = EventDrivenWorkflow(cfg, StageCostModel(cfg, seed=5))
    wf.run(20)
    assert len(wf.queue) == 0
    assert wf.queue.events_processed >= 20 * 3  # >= 3 chained events/cycle
