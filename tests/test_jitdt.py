"""JIT-DT: protocol, transfer engine, watcher, fail-safe."""

import os

import numpy as np
import pytest

from repro.config import JITDTConfig
from repro.jitdt import (
    FailSafeMonitor,
    FileWatcher,
    SINETLink,
    TransferEngine,
    chunk_payload,
    reassemble,
)
from repro.jitdt.protocol import ChunkAssembler, ChunkHeader, ProtocolError
from repro.jitdt.transfer import TransferWatchdog


class TestProtocol:
    def test_roundtrip(self):
        payload = os.urandom(100_000)
        chunks = list(chunk_payload(payload, 1024))
        assert reassemble(chunks) == payload

    def test_chunk_count(self):
        chunks = list(chunk_payload(b"x" * 10_000, 1000))
        assert len(chunks) == 10

    def test_empty_payload_single_chunk(self):
        chunks = list(chunk_payload(b"", 1024))
        assert len(chunks) == 1
        assert reassemble(chunks) == b""

    def test_out_of_order_reassembly(self):
        payload = os.urandom(10_000)
        chunks = list(chunk_payload(payload, 1000))
        assert reassemble(chunks[::-1]) == payload

    def test_corruption_detected(self):
        chunks = list(chunk_payload(b"a" * 5000, 1000))
        bad = bytearray(chunks[2])
        bad[-1] ^= 0xFF
        chunks[2] = bytes(bad)
        with pytest.raises(ProtocolError, match="checksum"):
            reassemble(chunks)

    def test_missing_chunk_detected(self):
        chunks = list(chunk_payload(b"a" * 5000, 1000))
        with pytest.raises(ProtocolError, match="missing"):
            reassemble(chunks[:-1])

    def test_duplicate_chunk_detected(self):
        chunks = list(chunk_payload(b"a" * 5000, 1000))
        with pytest.raises(ProtocolError, match="duplicate"):
            reassemble(chunks + [chunks[0]])

    def test_truncated_body_detected(self):
        chunks = list(chunk_payload(b"a" * 5000, 1000))
        with pytest.raises(ProtocolError):
            reassemble([chunks[0][: ChunkHeader.size() + 10]])

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(chunk_payload(b"abc", 0))

    def test_sequence_out_of_range_names_index(self):
        chunks = list(chunk_payload(b"a" * 5000, 1000))
        hdr = ChunkHeader(seq=7, total=5, length=4, crc32=0)
        chunks[3] = hdr.pack() + b"body"
        with pytest.raises(ProtocolError, match=r"index 3.*out of range"):
            reassemble(chunks)

    def test_inconsistent_chunk_count_names_index(self):
        chunks = list(chunk_payload(b"a" * 5000, 1000))
        body = chunks[2][ChunkHeader.size():]
        import zlib

        hdr = ChunkHeader(seq=2, total=9, length=len(body), crc32=zlib.crc32(body))
        chunks[2] = hdr.pack() + body
        with pytest.raises(ProtocolError, match=r"index 2.*inconsistent"):
            reassemble(chunks)

    def test_zero_total_rejected(self):
        hdr = ChunkHeader(seq=0, total=0, length=0, crc32=0)
        with pytest.raises(ProtocolError, match="invalid chunk count"):
            reassemble([hdr.pack()])


class TestChunkAssembler:
    def test_out_of_order_streaming(self):
        payload = os.urandom(10_000)
        chunks = list(chunk_payload(payload, 1000))
        asm = ChunkAssembler()
        asm.ingest_many(chunks[::-1])
        assert asm.complete
        assert asm.payload() == payload
        assert asm.n_rejected == 0

    def test_damage_recorded_not_raised(self):
        chunks = list(chunk_payload(b"a" * 5000, 1000))
        bad = bytearray(chunks[2])
        bad[-1] ^= 0xFF
        chunks[2] = bytes(bad)
        asm = ChunkAssembler()
        asm.ingest_many(chunks)
        assert not asm.complete
        assert asm.n_rejected == 1
        assert asm.missing == {2}
        assert any("index 2" in e for e in asm.errors)

    def test_retransmit_repairs(self):
        payload = os.urandom(5000)
        chunks = list(chunk_payload(payload, 1000))
        asm = ChunkAssembler()
        asm.ingest_many(chunks[:-1])
        assert asm.missing == {4}
        asm.ingest(chunks[4])  # the retransmit
        assert asm.complete
        assert asm.payload() == payload

    def test_duplicate_retransmit_idempotent(self):
        payload = os.urandom(3000)
        chunks = list(chunk_payload(payload, 1000))
        asm = ChunkAssembler()
        asm.ingest_many(chunks + chunks)
        assert asm.n_duplicates == len(chunks)
        assert asm.payload() == payload

    def test_payload_before_complete_raises(self):
        chunks = list(chunk_payload(b"a" * 3000, 1000))
        asm = ChunkAssembler()
        asm.ingest(chunks[0])
        with pytest.raises(ProtocolError, match="missing"):
            asm.payload()


class TestSINETLink:
    def test_100mb_in_about_3s(self):
        link = SINETLink(seed=0)
        times = [link.transfer_time(100 * 1024 * 1024)[0] for _ in range(200)]
        not_stalled = [t for t in times if t < 15]
        assert 2.0 < np.mean(not_stalled) < 5.0  # paper: ~3 s

    def test_line_rate_far_below_goodput_time(self):
        # 400 Gbps line: the wire itself would take ~2 ms for 100 MB
        link = SINETLink()
        assert link.line_rate_time(100 * 1024 * 1024) < 0.1

    def test_stalls_rare(self):
        cfg = JITDTConfig(stall_probability=0.0)
        link = SINETLink(config=cfg, seed=1)
        assert not any(link.transfer_time(1000)[1] for _ in range(100))


class TestTransferEngine:
    def test_payload_intact(self):
        eng = TransferEngine(SINETLink(seed=3))
        payload = os.urandom(300_000)
        res = eng.send(payload)
        assert res.payload == payload
        assert res.nbytes == len(payload)
        assert res.n_chunks >= 1

    def test_goodput_accounting(self):
        eng = TransferEngine(SINETLink(seed=4))
        res = eng.send(b"z" * (10 * 1024 * 1024))
        assert 0.001 < res.goodput_gbps < 400.0

    def test_mean_seconds(self):
        eng = TransferEngine(SINETLink(seed=5))
        for _ in range(5):
            eng.send(b"q" * 100_000)
        assert eng.mean_seconds() > 0


class TestTransferHardening:
    @staticmethod
    def _flip_first_attempt(chunks, attempt):
        if attempt > 0:
            return chunks
        bad = bytearray(chunks[0])
        bad[-1] ^= 0x01
        return [bytes(bad)] + chunks[1:]

    def test_retransmit_repairs_payload(self):
        eng = TransferEngine(SINETLink(seed=6))
        payload = os.urandom(200_000)
        res = eng.send(payload, chunk_faults=self._flip_first_attempt)
        assert res.ok
        assert res.payload == payload
        assert res.n_retransmits == 1
        assert res.n_corrupt_chunks == 1
        assert not res.cancelled

    def test_clean_hook_matches_clean_path(self):
        payload = os.urandom(100_000)
        clean = TransferEngine(SINETLink(seed=7)).send(payload)
        hooked = TransferEngine(SINETLink(seed=7)).send(
            payload, chunk_faults=lambda chunks, attempt: chunks
        )
        assert hooked.seconds == clean.seconds
        assert hooked.payload == clean.payload
        assert hooked.n_retransmits == 0

    def test_unrepairable_terminates_with_error(self):
        eng = TransferEngine(SINETLink(seed=8))
        res = eng.send(
            os.urandom(50_000),
            chunk_faults=lambda chunks, attempt: [c[:10] for c in chunks],
        )
        assert not res.ok
        assert res.payload is None
        assert "unrepairable" in res.error
        assert res.n_retransmits == eng.retry.max_attempts - 1

    def test_watchdog_cancels_and_reports(self):
        mon = FailSafeMonitor(deadline_s=30.0)
        wd = TransferWatchdog(deadline_s=0.001, fraction=0.5, monitor=mon)
        eng = TransferEngine(SINETLink(seed=9), watchdog=wd)
        res = eng.send(
            os.urandom(50_000),
            chunk_faults=lambda chunks, attempt: [c[:10] for c in chunks],
        )
        assert res.cancelled
        assert not res.ok
        assert "watchdog" in res.error
        assert wd.trips == 1
        assert mon.watchdog_trips == 1

    def test_backoff_deterministic(self):
        a = TransferEngine(SINETLink(seed=10))._backoff_s(1, 3)
        b = TransferEngine(SINETLink(seed=10))._backoff_s(1, 3)
        assert a == b
        assert a > 0


class TestFileWatcher:
    def test_detects_completed_file(self, tmp_path):
        w = FileWatcher(tmp_path, "*.pawr")
        p = tmp_path / "scan_0001.pawr"
        p.write_bytes(b"data")
        assert w.poll() == []  # first sighting: pending
        events = w.poll()  # size stable: completed
        assert len(events) == 1
        assert events[0].size == 4

    def test_growing_file_not_reported(self, tmp_path):
        w = FileWatcher(tmp_path, "*.pawr")
        p = tmp_path / "scan_0002.pawr"
        p.write_bytes(b"aa")
        w.poll()
        p.write_bytes(b"aaaa")  # still growing
        assert w.poll() == []
        assert len(w.poll()) == 1  # now stable

    def test_file_reported_once(self, tmp_path):
        w = FileWatcher(tmp_path, "*.pawr")
        (tmp_path / "a.pawr").write_bytes(b"x")
        w.poll()
        assert len(w.poll()) == 1
        assert w.poll() == []

    def test_pattern_filter(self, tmp_path):
        w = FileWatcher(tmp_path, "*.pawr")
        (tmp_path / "notes.txt").write_bytes(b"x")
        w.poll()
        assert w.poll() == []

    def test_growth_between_polls_resets_settle(self, tmp_path):
        # satellite check: a file that grows between polls must restart
        # its settle count, not be emitted with the truncated size
        w = FileWatcher(tmp_path, "*.pawr", settle_polls=2)
        p = tmp_path / "scan.pawr"
        p.write_bytes(b"aa")
        assert w.poll() == []  # first sighting
        assert w.poll() == []  # stable x1 (< settle_polls)
        p.write_bytes(b"aaaa")  # grew mid-settle
        assert w.poll() == []  # reset: first sighting of new signature
        assert w.poll() == []  # stable x1
        events = w.poll()  # stable x2: settled
        assert len(events) == 1
        assert events[0].size == 4

    def test_mtime_only_rewrite_resets_settle(self, tmp_path):
        w = FileWatcher(tmp_path, "*.pawr", settle_polls=2)
        p = tmp_path / "scan.pawr"
        p.write_bytes(b"abcd")
        w.poll()
        w.poll()
        # in-place rewrite: same size, newer mtime
        st = p.stat()
        os.utime(p, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
        assert w.poll() == []  # signature changed: settle restarts
        assert w.poll() == []
        assert len(w.poll()) == 1

    def test_vanished_file_recreated_fresh(self, tmp_path):
        w = FileWatcher(tmp_path, "*.pawr")
        p = tmp_path / "scan.pawr"
        p.write_bytes(b"x")
        w.poll()
        assert len(w.poll()) == 1
        p.unlink()
        w.poll()  # purge
        p.write_bytes(b"yy")
        assert w.poll() == []  # fresh settle count
        events = w.poll()
        assert len(events) == 1
        assert events[0].size == 2

    def test_settle_polls_three(self, tmp_path):
        w = FileWatcher(tmp_path, "*.pawr", settle_polls=3)
        (tmp_path / "scan.pawr").write_bytes(b"x")
        polls = [w.poll() for _ in range(4)]
        assert polls[:3] == [[], [], []]
        assert len(polls[3]) == 1

    def test_settle_polls_validated(self, tmp_path):
        with pytest.raises(ValueError):
            FileWatcher(tmp_path, settle_polls=0)


class TestFailSafe:
    def test_fast_transfer_passes(self):
        mon = FailSafeMonitor(deadline_s=15.0)
        t = mon.supervise(0.0, [(3.0, False)])
        assert t == pytest.approx(3.0)
        assert mon.restarts == 0

    def test_stall_triggers_restart_then_retry(self):
        mon = FailSafeMonitor(deadline_s=15.0, restart_penalty_s=20.0)
        t = mon.supervise(0.0, [(3.0, True), (2.5, False)])
        # first attempt lost 3 s + 20 s restart, retry took 2.5 s
        assert t == pytest.approx(3.0 + 20.0 + 2.5)
        assert mon.restarts == 1

    def test_slow_transfer_treated_as_hung(self):
        mon = FailSafeMonitor(deadline_s=15.0, restart_penalty_s=20.0)
        t = mon.supervise(0.0, [(60.0, False), (2.0, False)])
        # capped at deadline before restart
        assert t == pytest.approx(15.0 + 20.0 + 2.0)

    def test_all_attempts_fail_skips_cycle(self):
        mon = FailSafeMonitor(deadline_s=15.0, max_attempts=2)
        t = mon.supervise(0.0, [(99.0, True), (99.0, True)])
        assert t is None
        assert mon.skipped_cycles == 1

    def test_restart_rate(self):
        mon = FailSafeMonitor(deadline_s=15.0)
        mon.supervise(0.0, [(3.0, False)])
        mon.supervise(30.0, [(99.0, True), (2.0, False)])
        assert 0 < mon.restart_rate < 1
