"""JIT-DT: protocol, transfer engine, watcher, fail-safe."""

import os

import numpy as np
import pytest

from repro.config import JITDTConfig
from repro.jitdt import (
    FailSafeMonitor,
    FileWatcher,
    SINETLink,
    TransferEngine,
    chunk_payload,
    reassemble,
)
from repro.jitdt.protocol import ChunkHeader, ProtocolError


class TestProtocol:
    def test_roundtrip(self):
        payload = os.urandom(100_000)
        chunks = list(chunk_payload(payload, 1024))
        assert reassemble(chunks) == payload

    def test_chunk_count(self):
        chunks = list(chunk_payload(b"x" * 10_000, 1000))
        assert len(chunks) == 10

    def test_empty_payload_single_chunk(self):
        chunks = list(chunk_payload(b"", 1024))
        assert len(chunks) == 1
        assert reassemble(chunks) == b""

    def test_out_of_order_reassembly(self):
        payload = os.urandom(10_000)
        chunks = list(chunk_payload(payload, 1000))
        assert reassemble(chunks[::-1]) == payload

    def test_corruption_detected(self):
        chunks = list(chunk_payload(b"a" * 5000, 1000))
        bad = bytearray(chunks[2])
        bad[-1] ^= 0xFF
        chunks[2] = bytes(bad)
        with pytest.raises(ProtocolError, match="checksum"):
            reassemble(chunks)

    def test_missing_chunk_detected(self):
        chunks = list(chunk_payload(b"a" * 5000, 1000))
        with pytest.raises(ProtocolError, match="missing"):
            reassemble(chunks[:-1])

    def test_duplicate_chunk_detected(self):
        chunks = list(chunk_payload(b"a" * 5000, 1000))
        with pytest.raises(ProtocolError, match="duplicate"):
            reassemble(chunks + [chunks[0]])

    def test_truncated_body_detected(self):
        chunks = list(chunk_payload(b"a" * 5000, 1000))
        with pytest.raises(ProtocolError):
            reassemble([chunks[0][: ChunkHeader.size() + 10]])

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(chunk_payload(b"abc", 0))


class TestSINETLink:
    def test_100mb_in_about_3s(self):
        link = SINETLink(seed=0)
        times = [link.transfer_time(100 * 1024 * 1024)[0] for _ in range(200)]
        not_stalled = [t for t in times if t < 15]
        assert 2.0 < np.mean(not_stalled) < 5.0  # paper: ~3 s

    def test_line_rate_far_below_goodput_time(self):
        # 400 Gbps line: the wire itself would take ~2 ms for 100 MB
        link = SINETLink()
        assert link.line_rate_time(100 * 1024 * 1024) < 0.1

    def test_stalls_rare(self):
        cfg = JITDTConfig(stall_probability=0.0)
        link = SINETLink(config=cfg, seed=1)
        assert not any(link.transfer_time(1000)[1] for _ in range(100))


class TestTransferEngine:
    def test_payload_intact(self):
        eng = TransferEngine(SINETLink(seed=3))
        payload = os.urandom(300_000)
        res = eng.send(payload)
        assert res.payload == payload
        assert res.nbytes == len(payload)
        assert res.n_chunks >= 1

    def test_goodput_accounting(self):
        eng = TransferEngine(SINETLink(seed=4))
        res = eng.send(b"z" * (10 * 1024 * 1024))
        assert 0.001 < res.goodput_gbps < 400.0

    def test_mean_seconds(self):
        eng = TransferEngine(SINETLink(seed=5))
        for _ in range(5):
            eng.send(b"q" * 100_000)
        assert eng.mean_seconds() > 0


class TestFileWatcher:
    def test_detects_completed_file(self, tmp_path):
        w = FileWatcher(tmp_path, "*.pawr")
        p = tmp_path / "scan_0001.pawr"
        p.write_bytes(b"data")
        assert w.poll() == []  # first sighting: pending
        events = w.poll()  # size stable: completed
        assert len(events) == 1
        assert events[0].size == 4

    def test_growing_file_not_reported(self, tmp_path):
        w = FileWatcher(tmp_path, "*.pawr")
        p = tmp_path / "scan_0002.pawr"
        p.write_bytes(b"aa")
        w.poll()
        p.write_bytes(b"aaaa")  # still growing
        assert w.poll() == []
        assert len(w.poll()) == 1  # now stable

    def test_file_reported_once(self, tmp_path):
        w = FileWatcher(tmp_path, "*.pawr")
        (tmp_path / "a.pawr").write_bytes(b"x")
        w.poll()
        assert len(w.poll()) == 1
        assert w.poll() == []

    def test_pattern_filter(self, tmp_path):
        w = FileWatcher(tmp_path, "*.pawr")
        (tmp_path / "notes.txt").write_bytes(b"x")
        w.poll()
        assert w.poll() == []


class TestFailSafe:
    def test_fast_transfer_passes(self):
        mon = FailSafeMonitor(deadline_s=15.0)
        t = mon.supervise(0.0, [(3.0, False)])
        assert t == pytest.approx(3.0)
        assert mon.restarts == 0

    def test_stall_triggers_restart_then_retry(self):
        mon = FailSafeMonitor(deadline_s=15.0, restart_penalty_s=20.0)
        t = mon.supervise(0.0, [(3.0, True), (2.5, False)])
        # first attempt lost 3 s + 20 s restart, retry took 2.5 s
        assert t == pytest.approx(3.0 + 20.0 + 2.5)
        assert mon.restarts == 1

    def test_slow_transfer_treated_as_hung(self):
        mon = FailSafeMonitor(deadline_s=15.0, restart_penalty_s=20.0)
        t = mon.supervise(0.0, [(60.0, False), (2.0, False)])
        # capped at deadline before restart
        assert t == pytest.approx(15.0 + 20.0 + 2.0)

    def test_all_attempts_fail_skips_cycle(self):
        mon = FailSafeMonitor(deadline_s=15.0, max_attempts=2)
        t = mon.supervise(0.0, [(99.0, True), (99.0, True)])
        assert t is None
        assert mon.skipped_cycles == 1

    def test_restart_rate(self):
        mon = FailSafeMonitor(deadline_s=15.0)
        mon.supervise(0.0, [(3.0, False)])
        mon.supervise(30.0, [(99.0, True), (2.0, False)])
        assert 0 < mon.restart_rate < 1
