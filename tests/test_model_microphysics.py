import numpy as np
import pytest

from repro.constants import TEM00
from repro.model.microphysics import FALL_SPEED_PARAMS, MicrophysicsSM6, surface_rain_rate


@pytest.fixture()
def mp(model):
    return MicrophysicsSM6(model.grid, model.reference)


def saturated_state(model, *, qc=0.0, qr=0.0, qi=0.0, supersat=1.3):
    """A state with supersaturated low levels and optional condensate."""
    from repro.constants import saturation_mixing_ratio

    st = model.initial_state()
    pres = st.pressure()
    temp = st.temperature()
    qsat = saturation_mixing_ratio(pres, temp)
    st.fields["qv"][...] = (supersat * qsat).astype(model.grid.dtype)
    st.fields["qc"][...] = qc
    st.fields["qr"][...] = qr
    st.fields["qi"][...] = qi
    return st


class TestSaturationAdjustment:
    def test_condensation_in_supersaturation(self, model, mp):
        st = saturated_state(model)
        d = mp.tendencies(st, dt=10.0)
        assert np.any(d["qc"] > 0)
        assert np.any(d["qv"] < 0)

    def test_latent_heating_positive_where_condensing(self, model, mp):
        st = saturated_state(model)
        d = mp.tendencies(st, dt=10.0)
        heating = d["rhot_p"]
        cond = d["qc"] > 1e-10
        assert np.all(heating[cond] > 0)

    def test_no_condensation_when_subsaturated(self, model, mp):
        st = saturated_state(model, supersat=0.5)
        d = mp.tendencies(st, dt=10.0)
        assert np.all(d["qc"] <= 1e-12)

    def test_cloud_evaporation_limited_by_available_cloud(self, model, mp):
        st = saturated_state(model, qc=1e-5, supersat=0.3)
        dt = 10.0
        d = mp.tendencies(st, dt)
        # evaporation cannot remove more cloud than exists
        assert np.all(st.fields["qc"] + dt * d["qc"] >= -1e-12)


class TestWarmRain:
    def test_autoconversion_above_threshold(self, model, mp):
        st = saturated_state(model, qc=2.0e-3)
        d = mp.tendencies(st, dt=10.0)
        assert np.any(d["qr"] > 0)

    def test_no_autoconversion_below_threshold(self, model, mp):
        st = saturated_state(model, qc=0.5e-3, supersat=1.0)
        d = mp.tendencies(st, dt=10.0)
        low = st.temperature() > TEM00  # warm region only (no riming path)
        assert np.all(d["qr"][low] <= 1e-10)

    def test_accretion_grows_with_rain(self, model, mp):
        st_small = saturated_state(model, qc=2e-3, qr=1e-4)
        st_big = saturated_state(model, qc=2e-3, qr=1e-3)
        d_small = mp.tendencies(st_small, dt=10.0)
        d_big = mp.tendencies(st_big, dt=10.0)
        # compare in the warm levels only (aloft, rain freezing to
        # graupel removes qr proportionally to qr itself)
        warm = st_small.temperature() > TEM00 + 2.0
        assert np.mean(d_big["qr"][warm]) > np.mean(d_small["qr"][warm])

    def test_rain_evaporates_in_dry_air(self, model, mp):
        st = saturated_state(model, qr=1e-3, supersat=0.2)
        d = mp.tendencies(st, dt=10.0)
        assert np.any(d["qr"] < 0)
        assert np.any(d["qv"] > 0)


class TestColdRain:
    def test_ice_forms_only_below_freezing(self, model, mp):
        st = saturated_state(model, supersat=1.5)
        d = mp.tendencies(st, dt=10.0)
        temp = st.temperature()
        warm = temp > TEM00 + 1.0
        assert np.all(d["qi"][warm] <= 1e-12)

    def test_melting_above_freezing(self, model, mp):
        st = saturated_state(model, supersat=1.0)
        st.fields["qs"][...] = 1e-3
        d = mp.tendencies(st, dt=10.0)
        warm = st.temperature() > TEM00 + 2.0
        if np.any(warm):
            assert np.all(d["qs"][warm] < 0)
            assert np.all(d["qr"][warm] > 0)

    def test_homogeneous_freezing_of_rain(self, model, mp):
        st = saturated_state(model, qr=1e-3, supersat=0.9)
        temp = st.temperature()
        very_cold = temp < mp.t_frz
        if np.any(very_cold):
            d = mp.tendencies(st, dt=10.0)
            assert np.all(d["qg"][very_cold] >= 0)
            assert np.all(d["qr"][very_cold] <= 0)


class TestWaterConservation:
    def test_process_rates_conserve_total_water(self, model, mp):
        st = saturated_state(model, qc=2e-3, qr=5e-4, qi=2e-4)
        st.fields["qs"][...] = 1e-4
        st.fields["qg"][...] = 1e-4
        d = mp.tendencies(st, dt=10.0)
        total = sum(d[q] for q in ("qv", "qc", "qr", "qi", "qs", "qg"))
        # all microphysical conversions are internal: total water unchanged
        assert np.allclose(total, 0.0, atol=1e-12)

    def test_positivity_after_one_step(self, model, mp):
        st = saturated_state(model, qc=1e-4, qr=1e-5)
        dt = 10.0
        d = mp.tendencies(st, dt)
        for q in ("qv", "qc", "qr", "qi", "qs", "qg"):
            new = st.fields[q] + dt * d[q]
            assert np.all(new >= -1e-10), q


class TestSedimentation:
    def test_fall_speed_monotone_in_content(self, model):
        dens = np.full((4,), 1.0)
        qr_small = np.full((4,), 1e-5)
        qr_big = np.full((4,), 1e-3)
        from repro.model.microphysics import _fall_speed

        v_small = _fall_speed("qr", dens, qr_small, 1.2)
        v_big = _fall_speed("qr", dens, qr_big, 1.2)
        assert np.all(v_big > v_small)

    def test_fall_speeds_capped(self, model):
        from repro.model.microphysics import _fall_speed

        v = _fall_speed("qr", np.array([1.0]), np.array([1.0]), 1.2)
        assert v[0] <= 12.0

    def test_rain_reaches_surface(self, model, mp):
        st = model.initial_state()
        st.fields["qr"][...] = 1e-3
        rr = mp.sedimentation(st, dt=30.0)
        assert rr.shape == (model.grid.ny, model.grid.nx)
        assert np.all(rr > 0)

    def test_sedimentation_removes_water_only_through_surface(self, model, mp):
        st = model.initial_state()
        st.fields["qr"][...] = 1e-3
        before = st.total_water_path()
        dt = 30.0
        rr = mp.sedimentation(st, dt)  # mm/h
        after = st.total_water_path()
        # column water lost == surface flux (mm/h -> kg/m2 over dt)
        lost = before - after
        flux = float(np.mean(rr)) / 3600.0 * dt
        assert lost == pytest.approx(flux, rel=0.05)

    def test_no_rain_no_op(self, model, mp):
        st = model.initial_state()
        rr = mp.sedimentation(st, dt=30.0)
        assert np.allclose(rr, 0.0)

    def test_surface_rain_rate_diagnostic(self, model):
        st = model.initial_state()
        st.fields["qr"][0] = 2e-3
        rr = surface_rain_rate(st)
        assert np.all(rr > 0)

    def test_species_have_fall_params(self):
        assert set(FALL_SPEED_PARAMS) == {"qr", "qs", "qg"}
