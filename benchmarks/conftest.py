"""Shared fixtures and artifact helpers for the experiment benchmarks.

Each benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md) and writes its text/PNG artifacts under
``benchmarks/output/`` so results survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config import LETKFConfig, RadarConfig, ScaleConfig
from repro.core import BDASystem
from repro.model.initial import convective_sounding

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_artifact(name: str, text: str) -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    p = OUTPUT_DIR / name
    p.write_text(text)
    return p


def build_osse(*, nx: int = 20, members: int = 8, seed: int = 13) -> BDASystem:
    """The reduced-scale OSSE used by the Fig. 1/6/7/8 benchmarks."""
    scale_cfg = ScaleConfig().reduced(nx=nx, nz=12, members=members)
    letkf_cfg = LETKFConfig(
        ensemble_size=members,
        analysis_zmin=0.0,
        analysis_zmax=20000.0,
        localization_h=10000.0,
        localization_v=4000.0,
        gross_error_refl_dbz=100.0,
        gross_error_doppler_ms=100.0,
        eigensolver="lapack",
    )
    bda = BDASystem(
        scale_cfg,
        letkf_cfg,
        RadarConfig().reduced(),
        sounding=convective_sounding(cape_factor=1.1),
        seed=seed,
    )
    bda.trigger_convection(n=3, amplitude=5.0)
    bda.spinup_nature(1800.0)
    return bda


@pytest.fixture(scope="session")
def cycled_osse() -> BDASystem:
    """An OSSE system after 12 assimilation cycles (shared, read-mostly).

    Benchmarks that advance the nature run (Fig. 7) must do so on their
    own schedule; they run after the snapshot benchmarks by file order.
    """
    bda = build_osse()
    for _ in range(12):
        bda.cycle()
    return bda
