"""Ablation: localization scale sensitivity (Taylor et al. 2023, ref [35]).

The paper's 2 km horizontal/vertical localization came out of a
dedicated sensitivity study. The small-ensemble LETKF's signature
behaviour reproduces here: too-tight localization throws information
away, too-loose localization lets sampling noise through; an interior
scale wins.
"""

import numpy as np
from conftest import write_artifact
from scipy.ndimage import gaussian_filter

from repro.config import LETKFConfig, reduced_inner_domain
from repro.grid import Grid
from repro.letkf import LETKFSolver
from repro.letkf.qc import GriddedObservations

SCALES = (3000.0, 8000.0, 16000.0, 40000.0)
MEMBERS = 5  # small ensemble: spurious long-range correlations are real


def run_scale(grid, loc_h, seed=0):
    rng = np.random.default_rng(seed)

    def smooth(std):
        # short decorrelation length (~1 cell) so distant observations
        # carry no true signal — only sampling noise
        f = gaussian_filter(rng.normal(size=grid.shape), sigma=(0.5, 1, 1))
        return (f / f.std() * std).astype(np.float32)

    truth = smooth(8.0) + 20
    ens = np.stack([truth + smooth(6.0) + 2 for _ in range(MEMBERS)])
    # sparse observations: every third column (localization matters most
    # when obs must spread information)
    valid = np.zeros(grid.shape, bool)
    valid[:, ::3, ::3] = True
    obs = GriddedObservations(
        kind="reflectivity",
        values=truth + rng.normal(size=grid.shape).astype(np.float32),
        valid=valid,
        error_std=1.0,
    )
    cfg = LETKFConfig(
        ensemble_size=MEMBERS, localization_h=loc_h, localization_v=3000.0,
        analysis_zmin=0.0, analysis_zmax=20000.0, eigensolver="lapack",
    )
    ana, _ = LETKFSolver(grid, cfg).analyze(
        {"x": ens}, [obs], {"reflectivity": ens.copy()}
    )
    return float(np.sqrt(np.mean((ana["x"].mean(0) - truth) ** 2)))


def test_localization_ablation(benchmark):
    grid = Grid(reduced_inner_domain(nx=16, nz=8))
    rmse = {s: np.mean([run_scale(grid, s, seed=k) for k in range(4)]) for s in SCALES}
    benchmark.pedantic(run_scale, args=(grid, 8000.0), rounds=1, iterations=1)

    lines = [f"{'loc_h [km]':>10} {'analysis RMSE':>14}"]
    for s, r in rmse.items():
        lines.append(f"{s/1000:>10.1f} {r:>14.3f}")
    write_artifact("ablation_localization.txt", "\n".join(lines) + "\n")

    best = min(rmse, key=rmse.get)
    # an interior scale beats the extremes (the ref-[35] result shape)
    assert best not in (SCALES[0], SCALES[-1]), rmse
    # the too-loose extreme is measurably worse than the best
    assert rmse[SCALES[-1]] > rmse[best]
