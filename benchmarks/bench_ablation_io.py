"""Ablation: file I/O vs parallel (RAM-copy) SCALE<->LETKF coupling.

Sec. 5: "the data transfer between SCALE and the LETKF was accelerated
by replacing the original file I/O with parallel I/O using the MPI data
transfer with RAM copy ... without using files."

Both transports perform the identical ensemble transpose on identical
bytes; the benchmark reports measured wall time AND the simulated
production-scale time (Tofu link model vs exclusive-volume disk model),
asserting the parallel path wins on both.
"""

import numpy as np
from conftest import write_artifact

from repro.comm import DiskVolume, FileTransport, ParallelTransport


def make_ensemble(m=16, npoints=120_000, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(m, npoints)).astype(np.float32)


def test_io_ablation(benchmark, tmp_path):
    ens = make_ensemble()
    n_ranks = 8

    file_t = FileTransport(DiskVolume(exclusive=True, seed=1), workdir=str(tmp_path))
    par_t = ParallelTransport()

    # best-of-3 for the wall clock (at test sizes the file path runs in
    # the page cache, so single measurements are noisy)
    rep_f = rep_p = None
    for _ in range(3):
        shards_f, rf = file_t.transpose(ens, n_ranks)
        shards_p, rp = par_t.transpose(ens, n_ranks)
        rep_f = rf if rep_f is None or rf.wall_seconds < rep_f.wall_seconds else rep_f
        rep_p = rp if rep_p is None or rp.wall_seconds < rep_p.wall_seconds else rep_p

    benchmark.pedantic(
        lambda: par_t.transpose(ens, n_ranks), rounds=2, iterations=1
    )

    # identical results
    for a, b in zip(shards_f, shards_p):
        assert np.array_equal(a, b)

    # the innovation wins decisively in simulated production time (the
    # real claim: a parallel filesystem vs RAM copies); the wall clock on
    # this host only sanity-checks the parallel path is not pathological
    # (tmpfs-cached file I/O is itself RAM)
    assert rep_p.simulated_seconds < 0.1 * rep_f.simulated_seconds
    assert rep_p.wall_seconds < 5.0 * rep_f.wall_seconds

    # a shared (non-exclusive) volume makes the file path even worse —
    # the reason for the exclusive-volume allocation of Sec. 6.2
    shared_t = FileTransport(DiskVolume(exclusive=False, seed=1), workdir=str(tmp_path))
    _, rep_shared = shared_t.transpose(ens, n_ranks)
    assert rep_shared.simulated_seconds > rep_f.simulated_seconds

    # ---- end to end: the distributed LETKF through both transports -----
    from scipy.ndimage import gaussian_filter

    from repro.comm.parallel_letkf import DistributedLETKF
    from repro.config import LETKFConfig, reduced_inner_domain
    from repro.grid import Grid
    from repro.letkf.qc import GriddedObservations

    grid = Grid(reduced_inner_domain(nx=12, nz=8))
    cfg = LETKFConfig(
        ensemble_size=10, localization_h=9000.0, localization_v=3000.0,
        analysis_zmin=0.0, analysis_zmax=20000.0, eigensolver="lapack",
    )
    rng = np.random.default_rng(5)
    truth = gaussian_filter(rng.normal(size=grid.shape), (1, 2, 2)).astype(np.float32) * 8 + 20
    ens_da = np.stack([
        truth + gaussian_filter(rng.normal(size=grid.shape), (1, 2, 2)).astype(np.float32) * 6
        for _ in range(10)
    ])
    obs = GriddedObservations(
        kind="reflectivity",
        values=truth + rng.normal(size=grid.shape).astype(np.float32),
        valid=np.ones(grid.shape, bool),
        error_std=1.0,
    )
    hxb = {"reflectivity": ens_da.copy()}
    ana_p, drep_p = DistributedLETKF(grid, cfg, n_ranks=8).analyze(
        {"x": ens_da.copy()}, [obs.copy()], hxb
    )
    ana_f, drep_f = DistributedLETKF(
        grid, cfg, n_ranks=8, transport="file", workdir=str(tmp_path)
    ).analyze({"x": ens_da.copy()}, [obs.copy()], hxb)
    assert np.allclose(ana_p["x"], ana_f["x"], atol=1e-5)
    assert drep_p.simulated_comm_seconds < drep_f.simulated_comm_seconds

    write_artifact(
        "ablation_io.txt",
        f"ensemble transpose {ens.shape} over {n_ranks} ranks "
        f"({ens.nbytes/1e6:.0f} MB):\n"
        f"  file (exclusive volume): wall {rep_f.wall_seconds*1e3:8.1f} ms, "
        f"simulated {rep_f.simulated_seconds*1e3:8.1f} ms\n"
        f"  file (shared volume)   : simulated {rep_shared.simulated_seconds*1e3:8.1f} ms\n"
        f"  parallel RAM copy      : wall {rep_p.wall_seconds*1e3:8.1f} ms, "
        f"simulated {rep_p.simulated_seconds*1e3:8.1f} ms\n"
        f"  parallel speedup (simulated): "
        f"{rep_f.simulated_seconds/rep_p.simulated_seconds:.0f}x\n"
        "\nend-to-end distributed LETKF (identical analyses both ways):\n"
        f"  comm, parallel: {drep_p.simulated_comm_seconds*1e3:8.1f} ms simulated\n"
        f"  comm, file    : {drep_f.simulated_comm_seconds*1e3:8.1f} ms simulated\n",
    )
