"""Fig. 6: the 30-minute forecast vs the MP-PAWR observation.

From the cycled OSSE analysis, issues the product forecast, advances a
*fork* of the nature run to the verification time, simulates the radar
observation of it (including the Fig.-6b no-data mask), and renders the
side-by-side (a) forecast / (b) observation reflectivity panel at the
paper's 2-km height. Asserts the forecast reproduces the observed
echo pattern far better than chance.
"""

import numpy as np
from conftest import OUTPUT_DIR, write_artifact

from repro.verify import contingency, threat_score
from repro.viz import render_comparison, write_png


def run_case(bda, lead_s=300.0):
    fp = bda.forecast(length_seconds=lead_s, n_members=3, output_interval=lead_s)
    truth = bda.nature_model.integrate(bda.nature.copy(), lead_s)
    from repro.radar.reflectivity import dbz_from_state

    return fp, dbz_from_state(truth)


def test_fig6_forecast_vs_observation(benchmark, cycled_osse, output_dir):
    bda = cycled_osse
    fp, truth_dbz = benchmark.pedantic(run_case, args=(bda,), rounds=1, iterations=1)

    k2 = bda.model.grid.level_index(2000.0)
    mask = bda.obsope.coverage
    det = fp.member_dbz[0, -1]  # the mean-analysis member's forecast

    panel = render_comparison(det[k2], truth_dbz[k2], valid_obs=mask[k2])
    write_png(str(OUTPUT_DIR / "fig6_comparison.png"), panel)

    # quantitative agreement over the coverage volume
    corr = np.corrcoef(det[mask], truth_dbz[mask])[0, 1]
    ts = threat_score(contingency(det, truth_dbz, 10.0, mask=mask))
    write_artifact(
        "fig6_forecast_case.txt",
        f"pattern correlation (coverage volume): {corr:.3f}\n"
        f"threat score @10 dBZ: {ts:.3f}\n"
        f"forecast max dBZ: {det.max():.1f}, observed max dBZ: {truth_dbz.max():.1f}\n",
    )

    assert corr > 0.3, "forecast must reproduce the observed echo pattern"
    assert np.isfinite(ts) and ts > 0.1
    # the observation panel is masked outside coverage (Fig. 6b hatching)
    assert not mask[k2].all()
