"""Fig. 2: the overall workflow — one cycle, correct structure.

Runs single cycles through the real-time pipeline and asserts the
Fig.-2 stage ordering and overlap properties: data must arrive before
the LETKF starts, part <2> launches only after the analysis, part <1>
serializes consecutive cycles, and part <2> runs on rotating slots so a
new 30-minute forecast can start every 30 s while earlier ones finish.
"""

from conftest import write_artifact

from repro.config import WorkflowConfig
from repro.workflow import RealtimeWorkflow


def run_cycles(n=40, seed=0):
    wf = RealtimeWorkflow(WorkflowConfig(), seed=seed)
    for c in range(n):
        wf.run_cycle(c, rain_area_km2=1000.0)
    return wf


def test_fig2_workflow_structure(benchmark):
    wf = benchmark(run_cycles)
    recs = [r for r in wf.records if r.ok]
    assert len(recs) >= 35

    lines = ["cycle  T_obs   file   xfer   letkf  product  TTS[s]"]
    for r in recs[:10]:
        b = r.breakdown()
        lines.append(
            f"{r.cycle:5d}  {r.t_obs:6.0f} {b['file_creation']:6.2f} "
            f"{b['jitdt_transfer']:6.2f} {b['letkf_and_wait']:7.2f} "
            f"{b['forecast_30min_and_product']:8.2f} {r.time_to_solution:7.2f}"
        )
    write_artifact("fig2_workflow.txt", "\n".join(lines) + "\n")

    for r in recs:
        # stage ordering (Fig. 2 left-to-right)
        assert r.t_obs < r.t_file < r.t_transferred <= r.t_analysis < r.t_product

    # part <1> serializes: analyses strictly ordered
    ana = [r.t_analysis for r in recs]
    assert all(b > a for a, b in zip(ana, ana[1:]))

    # overlap: a new cycle's analysis completes while the previous
    # cycle's 30-minute forecast is still running
    overlaps = sum(
        1 for a, b in zip(recs, recs[1:]) if b.t_analysis < a.t_product
    )
    assert overlaps > len(recs) * 0.8

    # the rotating part-<2> slots all get used
    assert all(s.acquisitions > 0 for s in wf.part2_slots)
