"""Table 1: operational NWP systems vs BDA — the problem-size claim.

Regenerates the Table-1 survey with the derived problem-size-rate
column and asserts the paper's headline: the BDA system offers two
orders of magnitude more DA-weighted grid points per refresh second
than every operational system listed.
"""

from conftest import write_artifact

from repro.report import table1


def test_table1_problem_size(benchmark):
    rows, text = benchmark(table1)
    write_artifact("table1.txt", text)

    bda = rows[-1]
    assert bda.system.name == "BDA2021"
    ops = rows[:-1]
    for r in ops:
        ratio = bda.problem_size_rate / r.problem_size_rate
        assert ratio >= 100.0, (r.system.name, ratio)
    # and the refresh itself is 120x faster than hourly systems (Sec. 3)
    assert 3600.0 / bda.system.init_interval_s == 120.0
