"""Cycle-forecast throughput: serial vs batched execution backends.

Times the part <1-2> ensemble forecast step (the dominant compute of the
30-second cycle) through each execution backend on an identical seeded
ensemble, and reports members integrated per second. The vectorized
backend amortises Python/numpy dispatch over the member axis, which is
exactly the batching win the paper gets from treating the 1000-member
ensemble as one workload; the backends are bit-identical, so the
speedup is free.

Run as a script (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_cycle_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_cycle_throughput.py --smoke    # CI

Writes ``BENCH_cycle_throughput.json``. The ``relative_throughput``
numbers slot straight into :class:`repro.config.ExecutionConfig` to
propagate the measured speedup into the workflow cost model.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import ScaleConfig  # noqa: E402
from repro.core.backends import make_backend  # noqa: E402
from repro.core.ensemble import Ensemble  # noqa: E402
from repro.model.model import ScaleRM  # noqa: E402

BACKENDS = ("serial", "vectorized", "sharded")


def build_ensemble(nx: int, nz: int, members: int, seed: int):
    cfg = ScaleConfig().reduced(nx=nx, nz=nz, members=members)
    model = ScaleRM(cfg)
    rng = np.random.default_rng(seed)
    ens = Ensemble.from_model(model, members, rng)
    # one warm-up window so every member carries physics closure state
    # (TKE, rain rate) and the timed region sees steady-state work
    ens.state = make_backend("vectorized").forecast(model, ens.state, 30.0)
    return cfg, ens.state


def time_backend(name: str, cfg, state, *, seconds: float, repeats: int) -> dict:
    backend = make_backend(name)
    timings = []
    out = None
    for _ in range(repeats):
        model = ScaleRM(cfg)  # fresh model: no cross-backend warm caches
        work = state.copy()
        t0 = time.perf_counter()
        out = backend.forecast(model, work, seconds)
        timings.append(time.perf_counter() - t0)
    best = min(timings)
    m = state.n_members
    return {
        "backend": name,
        "seconds_per_cycle": best,
        "members_per_sec": m / best,
        "checksum": float(out.fields["rhot_p"].astype(np.float64).sum()),
    }


def run(args) -> dict:
    cfg, state = build_ensemble(args.nx, args.nz, args.members, args.seed)
    results = {}
    for name in BACKENDS:
        results[name] = time_backend(
            name, cfg, state, seconds=args.seconds, repeats=args.repeats
        )
        print(
            f"{name:>10}: {results[name]['seconds_per_cycle']:8.3f} s/cycle  "
            f"{results[name]['members_per_sec']:8.2f} members/s"
        )

    # the backends must agree bit-for-bit, otherwise the comparison is
    # meaningless (and the refactor broke equivalence)
    checks = {results[n]["checksum"] for n in BACKENDS}
    if len(checks) != 1:
        raise SystemExit(f"backend checksums diverge: {checks}")

    if args.profile:
        # separate pass so the probes never contaminate the timings above
        from repro.telemetry import Telemetry

        tel = Telemetry(profile_kernels=True)
        model = ScaleRM(cfg)
        tel.instrument_model(model)
        make_backend("vectorized").forecast(model, state.copy(), args.seconds)
        print("\nhot-kernel profile (vectorized backend, one cycle):")
        print(tel.profiler.report())

    base = results["serial"]["members_per_sec"]
    report = {
        "config": {
            "nx": args.nx,
            "nz": args.nz,
            "members": args.members,
            "cycle_seconds": args.seconds,
            "repeats": args.repeats,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "results": results,
        "relative_throughput": {
            n: results[n]["members_per_sec"] / base for n in BACKENDS
        },
    }
    speedup = report["relative_throughput"]["vectorized"]
    print(f"vectorized speedup over serial: {speedup:.2f}x")
    if not args.smoke and speedup < 3.0:
        raise SystemExit(
            f"vectorized backend is only {speedup:.2f}x serial (expected >= 3x)"
        )
    return report


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # default scale sits in the dispatch-bound regime the refactor
    # targets: many members on a modest per-member mesh (the 1000-member
    # production ensemble is far deeper into it)
    p.add_argument("--members", type=int, default=64)
    p.add_argument("--nx", type=int, default=8)
    p.add_argument("--nz", type=int, default=8)
    p.add_argument("--seconds", type=float, default=30.0, help="cycle window")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", type=str, default="BENCH_cycle_throughput.json")
    p.add_argument(
        "--smoke", action="store_true",
        help="tiny problem + no speedup gate (CI sanity run)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="additionally print the per-kernel wall-time/bytes profile "
             "(separate untimed pass; does not affect the benchmark numbers)",
    )
    args = p.parse_args(argv)
    if args.smoke:
        args.members = min(args.members, 8)
        args.nx = min(args.nx, 8)
        args.nz = min(args.nz, 8)
        args.repeats = 1

    report = run(args)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
