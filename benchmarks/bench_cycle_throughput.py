"""Cycle-forecast throughput: serial vs batched vs multiprocess backends.

Times the part <1-2> ensemble forecast step (the dominant compute of the
30-second cycle) through each execution backend on an identical seeded
ensemble, and reports members integrated per second. The vectorized
backend amortises Python/numpy dispatch over the member axis — the
batching win the paper gets from treating the 1000-member ensemble as
one workload; the ``processes`` backend then spreads member blocks over
a real worker pool through shared-memory slabs (the node-parallel axis
of the paper's part <1-2>). All backends are bit-identical, so every
speedup is free.

A second section times the compacted LETKF transform (the part <3>
analysis step) in ``single`` vs ``double`` precision and through the
row-sharded pool, recording the single-precision analysis-step speedup
separately from the forecast numbers.

Run as a script (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_cycle_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_cycle_throughput.py --smoke    # CI

Writes ``BENCH_cycle_throughput.json``. The ``relative_throughput``
numbers slot straight into :class:`repro.config.ExecutionConfig` to
propagate the measured speedup into the workflow cost model.

Gates (full runs only): vectorized must beat serial by >= 3x; on a
multi-core host, ``processes`` must additionally beat vectorized by
> 2x whole-cycle; every backend's forecast checksum must agree
bit-for-bit (``processes`` runs the comparison in double precision —
precision only touches the LETKF transform, and the forecast checksums
must match regardless).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import ExecutionConfig, ScaleConfig  # noqa: E402
from repro.core.backends import make_backend  # noqa: E402
from repro.core.ensemble import Ensemble  # noqa: E402
from repro.letkf.core import letkf_transform  # noqa: E402
from repro.model.model import ScaleRM  # noqa: E402

BACKENDS = ("serial", "vectorized", "sharded", "processes")
PRECISIONS = ("single", "double")


def build_ensemble(nx: int, nz: int, members: int, seed: int):
    cfg = ScaleConfig().reduced(nx=nx, nz=nz, members=members)
    model = ScaleRM(cfg)
    rng = np.random.default_rng(seed)
    ens = Ensemble.from_model(model, members, rng)
    # one warm-up window so every member carries physics closure state
    # (TKE, rain rate) and the timed region sees steady-state work
    ens.state = make_backend("vectorized").forecast(model, ens.state, 30.0)
    return cfg, ens.state


def _make_backend(name: str, workers: int | None, precision: str):
    return make_backend(ExecutionConfig(
        backend=name, workers=workers, precision=precision,
    ))


def time_backend(name: str, cfg, state, *, seconds: float, repeats: int,
                 workers: int | None, precision: str) -> dict:
    backend = _make_backend(name, workers, precision)
    try:
        if name == "processes":
            # untimed warm-up: fork the pool, attach slabs, ship the model
            backend.forecast(ScaleRM(cfg), state.copy(), seconds)
        timings = []
        out = None
        for _ in range(repeats):
            model = ScaleRM(cfg)  # fresh model: no cross-backend warm caches
            work = state.copy()
            t0 = time.perf_counter()
            out = backend.forecast(model, work, seconds)
            timings.append(time.perf_counter() - t0)
    finally:
        backend.close()
    best = min(timings)
    m = state.n_members
    return {
        "backend": name,
        "precision": precision,
        "workers": workers if name == "processes" else None,
        "seconds_per_cycle": best,
        "members_per_sec": m / best,
        "checksum": float(out.fields["rhot_p"].astype(np.float64).sum()),
    }


# ----------------------------------------------------------------------
# part <3>: the LETKF transform at single vs double precision


def letkf_problem(members: int, seed: int, *, rows: int, obs: int):
    """A seeded compacted active-row problem shaped like the cycle's."""
    rng = np.random.default_rng(seed + 1)
    dYb = rng.normal(0.0, 1.0, size=(rows, obs, members))
    dYb -= dYb.mean(axis=2, keepdims=True)
    d = rng.normal(0.0, 2.0, size=(rows, obs))
    rinv = rng.uniform(0.05, 1.0, size=(rows, obs))
    return dYb, d, rinv


def time_letkf(members: int, seed: int, *, rows: int, obs: int,
               repeats: int, workers: int | None) -> dict:
    dYb64, d64, rinv64 = letkf_problem(members, seed, rows=rows, obs=obs)
    out: dict = {"rows": rows, "obs_per_row": obs, "modes": {}}
    for precision in PRECISIONS:
        dt = np.float32 if precision == "single" else np.float64
        dYb, d, rinv = (a.astype(dt) for a in (dYb64, d64, rinv64))
        timings, W = [], None
        for _ in range(repeats):
            t0 = time.perf_counter()
            W = letkf_transform(
                dYb, d, rinv, rtpp_factor=0.95,
                assume_active=True, precision=precision,
            )
            timings.append(time.perf_counter() - t0)
        out["modes"][precision] = {
            "seconds": min(timings),
            "checksum": float(W.astype(np.float64).sum()),
        }
    out["single_speedup_over_double"] = (
        out["modes"]["double"]["seconds"] / out["modes"]["single"]["seconds"]
    )

    # the same transform row-sharded over the worker pool (single mode);
    # its weights must match the direct call bit-for-bit
    pool = _make_backend("processes", workers, "single")
    try:
        dYb, d, rinv = (
            a.astype(np.float32) for a in (dYb64, d64, rinv64)
        )
        pool.letkf_runner(  # untimed warm-up: fork + slab attach
            dYb, d, rinv, rtpp_factor=0.95,
            assume_active=True, precision="single",
        )
        timings, W = [], None
        for _ in range(repeats):
            t0 = time.perf_counter()
            W = pool.letkf_runner(
                dYb, d, rinv, rtpp_factor=0.95,
                assume_active=True, precision="single",
            )
            timings.append(time.perf_counter() - t0)
        sharded_checksum = float(W.astype(np.float64).sum())
    finally:
        pool.close()
    out["sharded_single"] = {
        "seconds": min(timings),
        "workers": workers,
        "checksum": sharded_checksum,
    }
    if sharded_checksum != out["modes"]["single"]["checksum"]:
        raise SystemExit(
            "row-sharded LETKF weights diverge from the direct transform: "
            f"{sharded_checksum!r} != {out['modes']['single']['checksum']!r}"
        )
    return out


def run(args) -> dict:
    cfg, state = build_ensemble(args.nx, args.nz, args.members, args.seed)
    results = {}
    for name in BACKENDS:
        # precision never touches the forecast; running the processes
        # row in double makes the checksum gate double-check exactly the
        # acceptance wording (processes/double bit-identical to
        # vectorized) at zero extra cost
        precision = "double" if name == "processes" else args.precision
        results[name] = time_backend(
            name, cfg, state, seconds=args.seconds, repeats=args.repeats,
            workers=args.workers, precision=precision,
        )
        print(
            f"{name:>10}: {results[name]['seconds_per_cycle']:8.3f} s/cycle  "
            f"{results[name]['members_per_sec']:8.2f} members/s"
        )

    # the backends must agree bit-for-bit, otherwise the comparison is
    # meaningless (and the refactor broke equivalence)
    checks = {results[n]["checksum"] for n in BACKENDS}
    if len(checks) != 1:
        raise SystemExit(f"backend checksums diverge: {checks}")

    letkf = time_letkf(
        args.members, args.seed,
        rows=args.letkf_rows, obs=args.letkf_obs,
        repeats=args.repeats, workers=args.workers,
    )
    print(
        f"letkf single: {letkf['modes']['single']['seconds']:.4f} s   "
        f"double: {letkf['modes']['double']['seconds']:.4f} s   "
        f"(single {letkf['single_speedup_over_double']:.2f}x)"
    )

    if args.profile:
        # separate pass so the probes never contaminate the timings above
        from repro.telemetry import Telemetry

        tel = Telemetry(profile_kernels=True)
        model = ScaleRM(cfg)
        tel.instrument_model(model)
        make_backend("vectorized").forecast(model, state.copy(), args.seconds)
        print("\nhot-kernel profile (vectorized backend, one cycle):")
        print(tel.profiler.report())

    base = results["serial"]["members_per_sec"]
    cpu_count = os.cpu_count() or 1
    report = {
        "config": {
            "nx": args.nx,
            "nz": args.nz,
            "members": args.members,
            "cycle_seconds": args.seconds,
            "repeats": args.repeats,
            "seed": args.seed,
            "workers": args.workers,
            "precision": args.precision,
            "smoke": args.smoke,
        },
        "host": {"cpu_count": cpu_count},
        "results": results,
        "letkf": letkf,
        "relative_throughput": {
            n: results[n]["members_per_sec"] / base for n in BACKENDS
        },
    }
    speedup = report["relative_throughput"]["vectorized"]
    print(f"vectorized speedup over serial: {speedup:.2f}x")
    if not args.smoke and speedup < 3.0:
        raise SystemExit(
            f"vectorized backend is only {speedup:.2f}x serial (expected >= 3x)"
        )
    proc_speedup = (
        results["processes"]["members_per_sec"]
        / results["vectorized"]["members_per_sec"]
    )
    print(
        f"processes speedup over vectorized: {proc_speedup:.2f}x "
        f"({cpu_count} core(s))"
    )
    # real cores only pay off when the host has them; a single-core host
    # records its honest (slower) number without failing the run
    if not args.smoke and cpu_count > 1 and proc_speedup <= 2.0:
        raise SystemExit(
            f"processes backend is only {proc_speedup:.2f}x vectorized on a "
            f"{cpu_count}-core host (expected > 2x)"
        )
    return report


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # default scale sits in the dispatch-bound regime the refactor
    # targets: many members on a modest per-member mesh (the 1000-member
    # production ensemble is far deeper into it)
    p.add_argument("--members", type=int, default=64)
    p.add_argument("--nx", type=int, default=8)
    p.add_argument("--nz", type=int, default=8)
    p.add_argument("--seconds", type=float, default=30.0, help="cycle window")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=None,
                   help="processes-backend pool size (default: cpu count)")
    p.add_argument("--precision", choices=PRECISIONS, default="single",
                   help="LETKF hot-path precision for the in-process "
                        "backends (the processes row always runs double "
                        "for the checksum gate)")
    p.add_argument("--letkf-rows", type=int, default=2048,
                   help="active analysis rows in the LETKF section")
    p.add_argument("--letkf-obs", type=int, default=24,
                   help="observations per active row in the LETKF section")
    p.add_argument("--out", type=str, default="BENCH_cycle_throughput.json")
    p.add_argument(
        "--smoke", action="store_true",
        help="tiny problem + no speedup gates (CI sanity run)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="additionally print the per-kernel wall-time/bytes profile "
             "(separate untimed pass; does not affect the benchmark numbers)",
    )
    args = p.parse_args(argv)
    if args.smoke:
        args.members = min(args.members, 8)
        args.nx = min(args.nx, 8)
        args.nz = min(args.nz, 8)
        args.repeats = 1
        args.letkf_rows = min(args.letkf_rows, 256)
        if args.workers is None:
            args.workers = 2

    report = run(args)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
