"""Extension: BDA vs advection nowcast (Honda et al. 2022 GRL, ref [34]).

The companion study to the paper shows the "Advantage of 30-s-Updating
Numerical Weather Prediction ... over Operational Nowcast". This
benchmark adds the advection-nowcast baseline (TREC motion + semi-
Lagrangian extrapolation) to the Fig.-7 comparison: the nowcast beats
raw persistence, and the BDA forecast overtakes the nowcast at longer
leads where convective evolution (growth/decay) defeats extrapolation.
"""

import numpy as np
from conftest import build_osse, write_artifact

from repro.nowcast import AdvectionNowcast
from repro.radar.reflectivity import dbz_from_state
from repro.verify import PersistenceForecast, contingency, threat_score

N_LEADS = 4
LEAD_STEP = 150.0
THRESHOLD = 10.0


def run_comparison(seed=13):
    from repro.nowcast.advection import semi_lagrangian_advect

    bda = build_osse(nx=20, members=8, seed=seed)
    k2 = bda.model.grid.level_index(2000.0)
    frames3d = []
    for c in range(12):
        bda.cycle()
        obs = bda.last_obs[0]
        frames3d.append(np.where(obs.valid, obs.values, -30.0))

    pers = PersistenceForecast(frames3d[-1])
    # steering motion from the 2-km level, applied to the whole volume
    # (standard operational practice for volumetric extrapolation)
    nowcast2d = AdvectionNowcast(
        frames3d[-2][k2], frames3d[-1][k2], dx=bda.model.grid.dx, dt=30.0
    )

    def nowcast_volume(lead):
        if lead == 0.0:
            return frames3d[-1]
        return np.stack(
            [
                semi_lagrangian_advect(frames3d[-1][k], nowcast2d.motion, lead)
                for k in range(frames3d[-1].shape[0])
            ]
        )

    fp = bda.forecast(
        length_seconds=LEAD_STEP * (N_LEADS - 1), n_members=3, output_interval=LEAD_STEP
    )
    mask = bda.obsope.coverage

    rows = []
    truth_state = bda.nature.copy()
    for li in range(N_LEADS):
        truth = dbz_from_state(truth_state)
        lead = li * LEAD_STEP
        rows.append(
            (
                lead,
                threat_score(contingency(fp.member_dbz[0, li], truth, THRESHOLD, mask=mask)),
                threat_score(contingency(nowcast_volume(lead), truth, THRESHOLD, mask=mask)),
                threat_score(contingency(pers.at_lead(lead), truth, THRESHOLD, mask=mask)),
            )
        )
        if li < N_LEADS - 1:
            truth_state = bda.nature_model.integrate(truth_state, LEAD_STEP)
    return rows


def test_nowcast_extension(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    lines = [f"threat score @{THRESHOLD:.0f} dBZ, coverage volume (ref [34] comparison)"]
    lines.append(f"{'lead [min]':>10} {'BDA':>8} {'nowcast':>9} {'persistence':>12}")
    for lead, tb, tn, tp in rows:
        lines.append(f"{lead/60:>10.1f} {tb:>8.3f} {tn:>9.3f} {tp:>12.3f}")
    write_artifact("ext_nowcast.txt", "\n".join(lines) + "\n")

    # both reference products are perfect-ish at lead 0
    assert rows[0][2] > 0.8 and rows[0][3] > 0.8
    # at the final lead the NWP forecast beats persistence and at least
    # matches the nowcast (at this scale echo motion is weak, so the
    # nowcast's edge over persistence is small; ref [34] separates them
    # at full scale)
    _, tb, tn, tp = rows[-1]
    assert tb > tp, "BDA must beat persistence at long leads"
    assert tb > tn - 0.05, "BDA must at least match the nowcast at long leads"
