"""Extension: operational monitoring over the Fig.-5 campaign.

The paper's deployment ran supervised for a month ("data transfer
activities are monitored, and JIT-DT is restarted automatically");
this benchmark replays a simulated campaign through the monitoring
layer and checks the operational accounting closes: detected outage
windows recover the injected ones, the rolling deadline compliance
matches the batch statistic, and the campaign log round-trips through
the JSONL record format.
"""

import numpy as np
from conftest import write_artifact

from repro.workflow import OLYMPICS, OperationsSimulator
from repro.workflow.monitor import WorkflowMonitor, detect_outages
from repro.workflow.replay import read_log, write_log


def run_monitoring(tmpdir):
    result = OperationsSimulator(seed=2021).run_period(OLYMPICS)
    mon = WorkflowMonitor(deadline_s=180.0, window=240)
    for rec in result.records:
        mon.observe(rec)
    log_path = tmpdir / "olympics.jsonl"
    n = write_log(result.records, log_path)
    back = list(read_log(log_path))
    return result, mon, n, back


def test_monitoring_extension(benchmark, tmp_path):
    result, mon, n_logged, back = benchmark.pedantic(
        run_monitoring, args=(tmp_path,), rounds=1, iterations=1
    )

    # the log round-trips completely
    assert n_logged == len(result.records) == len(back)
    assert all(a.ok == b.ok for a, b in zip(result.records, back))

    # outage detection recovers a sensible gray-shading set
    windows = detect_outages(result.records, min_cycles=4)
    detected_s = sum(e - s for s, e in windows)
    actual_skipped = sum(1 for r in result.records if not r.ok) * 30.0
    assert 0.5 * actual_skipped <= detected_s <= 1.05 * actual_skipped

    # monitoring saw the late products the batch stats report
    tts = result.tts_series
    late = int(np.sum(tts[np.isfinite(tts)] > 180.0))
    late_alerts = [a for a in mon.alerts if a.kind == "late-product"]
    assert len(late_alerts) == late

    write_artifact(
        "ext_monitoring.txt",
        mon.summary()
        + f"\ndetected outage windows: {len(windows)} covering "
        f"{detected_s/3600:.1f} h (actual skipped: {actual_skipped/3600:.1f} h)\n"
        f"late-product alerts: {len(late_alerts)}\n",
    )
