"""Serving-tier gate: 10k-client steady state + stale-while-revalidate.

The paper's endpoint is served products: map views refreshed every 30
seconds for a public crowd. This benchmark pins down the serving
contract:

* **steady-state load** — a deterministic population of simulated
  clients (browser-style ETag memories, zipf-ish tile popularity)
  polls per-tenant tile pyramids; after the first refresh tick the
  delta cache must answer >= 90% of tile traffic without rendering
  (304s + render-cache hits), while requests/s and p99 latency are
  recorded from the real in-process handler;
* **stale-while-revalidate** — a cycle that misses its deadline must
  serve the previous cycle's tiles with an explicit staleness header
  (degradation-ladder rung in ``X-Repro-Rung``), never a 5xx, never a
  partial product;
* **no 5xx, ever** — across the full load run every response is < 500.

Run as a script (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_serving.py           # full
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke   # CI

Writes ``BENCH_serving.json``. All gates are enforced in both modes;
``--smoke`` only shrinks the population and the fleet warm-up.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serving import (  # noqa: E402
    LoadGenerator,
    PublishedCycle,
    ServingAPI,
    ServingStore,
    demo_store,
)
from repro.serving.store import CyclePublisher  # noqa: E402
from repro.telemetry import Telemetry  # noqa: E402

HIT_RATE_GATE = 0.90


def _newest_t(store) -> float:
    return max(
        (sh.newest_good().t_product
         for t in store.tenants
         if (sh := store.shelf(t)).newest_good() is not None),
        default=0.0,
    )


def steady_state_load(args) -> dict:
    """10k clients against fleet-published shelves; gate the hit rate."""
    store = demo_store(
        n_tenants=args.tenants, rounds=args.fleet_rounds, seed=args.seed
    )
    now = _newest_t(store)
    tel = Telemetry()
    api = ServingAPI(store, telemetry=tel, clock=lambda: now)
    gen = LoadGenerator(api, n_clients=args.clients, seed=args.seed)

    # tick 1 fills the client-side ETag memories and the render cache
    warm = gen.run(rounds=1, now=now)
    # steady state: the store unchanged between 30-s refresh ticks
    rep = gen.run(rounds=args.load_rounds, now=now)

    bad = {c: n for c, n in {**warm.status_counts,
                             **rep.status_counts}.items() if c >= 500}
    if bad:
        raise SystemExit(f"serving returned 5xx responses: {bad}")
    if rep.cache_hit_rate < HIT_RATE_GATE:
        raise SystemExit(
            f"steady-state cache hit rate {rep.cache_hit_rate:.1%} is "
            f"under the {HIT_RATE_GATE:.0%} gate"
        )
    print(
        f"  {rep.n_requests} requests from {args.clients} clients: "
        f"{rep.requests_per_s:10.0f} req/s, p50 {rep.p50_ms:.3f} ms, "
        f"p99 {rep.p99_ms:.3f} ms"
    )
    print(
        f"  steady-state cache hit rate {rep.cache_hit_rate:6.1%} "
        f"({rep.not_modified} x 304) [gate >= {HIT_RATE_GATE:.0%}]"
    )
    return {
        "n_clients": args.clients,
        "n_tenants": args.tenants,
        "fleet_rounds": args.fleet_rounds,
        "warmup": warm.as_dict(),
        "steady_state": rep.as_dict(),
        "requests_per_s": rep.requests_per_s,
        "p99_ms": rep.p99_ms,
        "cache_hit_rate": rep.cache_hit_rate,
        "hit_rate_gate": HIT_RATE_GATE,
    }


def stale_while_revalidate(args) -> dict:
    """A missed-deadline cycle serves the previous cycle's tiles."""
    store = ServingStore()
    pub = CyclePublisher(store, "tokyo", seed=args.seed)

    class _Rec:
        pass

    good = _Rec()
    good.ok = True
    good.cycle = 0
    good.t_obs = 0.0
    good.t_product = 25.0
    good.degraded = False
    good.rain_area_km2 = 5000.0
    pub.on_record(good)

    missed = _Rec()
    missed.ok = False
    missed.cycle = 1
    missed.t_obs = 30.0
    missed.skipped_reason = "deadline-miss"
    pub.on_record(missed)

    api = ServingAPI(store, telemetry=Telemetry())
    tile = "/v1/tokyo/tiles/rain/latest/1/0/0.png"
    resp = api.handle("GET", tile, now=40.0)
    if resp.status != 200:
        raise SystemExit(
            f"missed-deadline latest answered {resp.status}, not 200"
        )
    if resp.headers.get("X-Repro-Cycle") != "0":
        raise SystemExit(
            f"expected the previous cycle's tiles (cycle 0), got "
            f"{resp.headers.get('X-Repro-Cycle')}"
        )
    rung = resp.headers.get("X-Repro-Rung")
    if rung != "substitute" or "X-Repro-Staleness" not in resp.headers:
        raise SystemExit(
            f"missed-deadline serve must be marked (rung={rung}, "
            f"headers={sorted(resp.headers)})"
        )
    # far past the SLO the same request is still 200, rung 'stale'
    late = api.handle("GET", tile, now=2000.0)
    if late.status != 200 or late.headers.get("X-Repro-Rung") != "stale":
        raise SystemExit(
            f"SLO-expired latest must serve stale, got {late.status} "
            f"rung {late.headers.get('X-Repro-Rung')}"
        )
    print(
        f"  missed deadline: 200, cycle 0 substituted, rung {rung!r}, "
        f"staleness {resp.headers['X-Repro-Staleness']} s; "
        f"SLO-expired: 200, rung 'stale'"
    )
    return {
        "status": resp.status,
        "served_cycle": 0,
        "rung": rung,
        "staleness_header": resp.headers["X-Repro-Staleness"],
        "slo_expired_rung": late.headers["X-Repro-Rung"],
        "gate_ok": True,
    }


def partial_product_refused(args) -> dict:
    """An ok cycle missing a product field must be refused at publish."""
    store = ServingStore()
    try:
        store.publish("tokyo", PublishedCycle(
            cycle=0, t_obs=0.0, t_product=25.0, ok=True,
            fields={"rain": __import__("numpy").zeros((8, 8), "f4")},
        ))
    except ValueError as e:
        print(f"  partial publish refused: {e}")
        return {"refused": True, "error": str(e)}
    raise SystemExit("a partial product was published without error")


def run(args) -> dict:
    print(
        f"steady-state load ({args.clients} clients, {args.tenants} "
        f"tenants, {args.load_rounds} refresh ticks) ..."
    )
    load = steady_state_load(args)

    print("stale-while-revalidate (missed deadline, SLO expiry) ...")
    swr = stale_while_revalidate(args)

    print("partial-product refusal ...")
    partial = partial_product_refused(args)

    return {
        "config": {
            "clients": args.clients,
            "tenants": args.tenants,
            "fleet_rounds": args.fleet_rounds,
            "load_rounds": args.load_rounds,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "requests_per_s": load["requests_per_s"],
        "p99_ms": load["p99_ms"],
        "cache_hit_rate": load["cache_hit_rate"],
        "steady_state_load": load,
        "stale_while_revalidate": swr,
        "partial_product_refused": partial,
        "gate_ok": True,
    }


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--clients", type=int, default=10000,
                   help="simulated client population (default 10000)")
    p.add_argument("--tenants", type=int, default=2,
                   help="fleet tenants to publish and serve (default 2)")
    p.add_argument("--fleet-rounds", type=int, default=40,
                   help="30-s fleet rounds populating the shelves")
    p.add_argument("--load-rounds", type=int, default=2,
                   help="steady-state refresh ticks to measure")
    p.add_argument("--seed", type=int, default=2021)
    p.add_argument("--out", type=str, default="BENCH_serving.json")
    p.add_argument("--smoke", action="store_true",
                   help="shrink the population (all gates still enforced)")
    args = p.parse_args(argv)
    if args.smoke:
        args.clients = min(args.clients, 500)
        args.fleet_rounds = min(args.fleet_rounds, 20)

    report = run(args)
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
