"""Ablation: the 30-second refresh itself.

The headline innovation — 30-s refresh, "120x faster than 1-hour-refresh
systems" — exists because convective rain evolves nonlinearly in
minutes. The OSSE reproduces it: cycling every 30 s tracks the truth's
reflectivity pattern markedly better than assimilating the same total
time window at a slower (150 s) refresh.
"""

import numpy as np
from conftest import build_osse, write_artifact

from repro.radar.reflectivity import dbz_from_state

WINDOW_S = 360.0  # total assimilation window


def run_refresh(interval_s: float, seed: int = 21):
    bda = build_osse(nx=16, members=8, seed=seed)
    n_cycles = int(WINDOW_S / 30.0)
    slow_every = int(interval_s / 30.0)
    for c in range(n_cycles):
        # the nature always advances 30 s; assimilation only fires on
        # the refresh schedule
        bda.nature = bda.nature_model.integrate(bda.nature, 30.0)
        if (c + 1) % slow_every == 0:
            obs = bda.observe_nature()
            bda._inject_additive_spread()
            bda.cycler.run_cycle(obs)
        else:
            bda.ensemble.members = [
                bda.model.integrate(st, 30.0) for st in bda.ensemble.members
            ]
    truth = bda.nature_dbz()
    ana = dbz_from_state(bda.ensemble.mean_state())
    mask = bda.obsope.coverage
    return float(np.corrcoef(ana[mask], truth[mask])[0, 1])


def test_refresh_ablation(benchmark):
    corr_30s = run_refresh(30.0)
    corr_150s = run_refresh(150.0)
    benchmark.pedantic(run_refresh, args=(150.0,), rounds=1, iterations=1)

    write_artifact(
        "ablation_refresh.txt",
        f"analysis-truth reflectivity correlation after a {WINDOW_S:.0f}-s window:\n"
        f"  30-s refresh : {corr_30s:.3f}\n"
        f"  150-s refresh: {corr_150s:.3f}\n"
        "(the paper's premise: rapid refresh is what captures rapidly "
        "evolving convection)\n",
    )
    assert corr_30s > corr_150s
