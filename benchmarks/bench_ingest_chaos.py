"""Streaming-ingest chaos gate: fault sweep + fault-free bit-identity.

The deployed system's 30-second cadence survived a month on a real
network (Sec. 7); this benchmark asserts the reproduction's ingest
stack gives the same guarantee *by construction* under a seeded fault
sweep — scan delay/reorder/duplicate/drop up to 20 % per cycle plus
chunk-level corruption up to 5 % per transfer:

* **zero stale assimilations** — no admitted scan with a valid time at
  or below an already-resolved cycle;
* **zero duplicate assimilations** — no scan identity admitted twice;
* **every cycle resolved explicitly** — admit / substitute-previous /
  skip-cycle, never an implicit hang;
* **every faulted transfer terminated** — repaired through CRC-driven
  retransmits or cancelled by the watchdog, never hung;
* **fault-free bit-identity** — routing observations through the
  IngestBuffer with no faults produces a byte-identical ensemble to
  handing them to the DACycler directly.

Run as a script (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_ingest_chaos.py            # full
    PYTHONPATH=src python benchmarks/bench_ingest_chaos.py --smoke    # CI

Writes ``BENCH_ingest_chaos.json``. The gates above are enforced in
both modes; ``--smoke`` only shrinks cycle counts.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import LETKFConfig, RadarConfig, ScaleConfig  # noqa: E402
from repro.core import BDASystem  # noqa: E402
from repro.ingest.buffer import IngestBuffer, envelope_from_observations  # noqa: E402
from repro.ingest.chaos import IngestChaosCampaign  # noqa: E402
from repro.model.initial import convective_sounding  # noqa: E402
from repro.resilience.faults import StreamFaultRates  # noqa: E402

#: (scan delay/reorder/duplicate rate, scan drop rate, chunk fault rate)
SWEEP = (
    (0.0, 0.0, 0.0),
    (0.05, 0.01, 0.01),
    (0.10, 0.02, 0.025),
    (0.20, 0.05, 0.05),
)


def ensemble_sha256(bda: BDASystem) -> str:
    h = hashlib.sha256()
    for v, arr in sorted(bda.ensemble.state.fields.items()):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def build_bda(seed: int) -> BDASystem:
    scfg = ScaleConfig().reduced(nx=12, nz=10, members=4)
    lcfg = LETKFConfig(
        ensemble_size=4, analysis_zmin=0.0, analysis_zmax=20000.0,
        localization_h=15000.0, localization_v=5000.0,
        gross_error_refl_dbz=100.0, gross_error_doppler_ms=100.0,
        eigensolver="lapack",
    )
    bda = BDASystem(
        scfg, lcfg, RadarConfig().reduced(n_elevations=6, n_azimuths=24, n_gates=40),
        sounding=convective_sounding(), seed=seed,
    )
    bda.trigger_convection(n=2, amplitude=4.0)
    bda.spinup_nature(120.0)
    return bda


def bit_identity_check(seed: int, n_cycles: int) -> dict:
    """Direct cycling vs fault-free ingest-routed cycling, byte for byte."""
    direct = build_bda(seed)
    for _ in range(n_cycles):
        direct.cycle()

    routed = build_bda(seed)
    buf = IngestBuffer(routed.radar_config.name)
    actions = []
    for _ in range(n_cycles):
        # BDASystem.cycle(), with the observation hand-off routed
        # through the ingest buffer (on-time, clean stream)
        obs = routed.prepare_cycle()
        t = routed.nature.time
        env = envelope_from_observations(
            routed.radar_config.name, obs, t_valid=t, arrival_time=t
        )
        buf.offer(env)
        decision = buf.decide(t)
        res = routed.assimilate(admission=decision)
        actions.append((decision.action, res.mode))

    h_direct = ensemble_sha256(direct)
    h_routed = ensemble_sha256(routed)
    if h_direct != h_routed:
        raise SystemExit(
            f"fault-free ingest-routed cycling is not bit-identical to "
            f"direct cycling ({h_direct} != {h_routed})"
        )
    if any(a != ("admit", "analysis") for a in actions):
        raise SystemExit(
            f"fault-free stream produced non-admit decisions: {actions}"
        )
    return {
        "n_cycles": n_cycles,
        "seed": seed,
        "ensemble_sha256": h_direct,
        "bit_identical": True,
    }


def run(args) -> dict:
    sweeps = []
    for scan_rate, drop_rate, chunk_rate in SWEEP:
        rates = StreamFaultRates(
            scan_delay=scan_rate,
            scan_reorder=scan_rate,
            scan_duplicate=scan_rate,
            scan_drop=drop_rate,
            chunk_bitflip=chunk_rate,
            chunk_truncate=chunk_rate,
        )
        camp = IngestChaosCampaign(rates, seed=args.seed)
        report = camp.run(args.cycles)
        entry = {
            "scan_rate": scan_rate,
            "drop_rate": drop_rate,
            "chunk_rate": chunk_rate,
            **report.as_dict(),
        }
        sweeps.append(entry)
        print(
            f"scan {scan_rate:4.0%} drop {drop_rate:4.0%} chunk {chunk_rate:5.1%}: "
            f"avail {report.availability:6.1%}  "
            f"admit/sub/skip {report.decisions['admit']}/"
            f"{report.decisions['substitute-previous']}/"
            f"{report.decisions['skip-cycle']}  "
            f"retransmits {report.n_retransmits}  "
            f"stale {report.stale_admitted}  dup {report.duplicate_admitted}  "
            f"gate {'PASS' if report.gate_ok else 'FAIL'}"
        )
        if not report.gate_ok:
            raise SystemExit(
                f"chaos gate failed at scan_rate={scan_rate} "
                f"chunk_rate={chunk_rate}: "
                f"stale={report.stale_admitted} "
                f"dup={report.duplicate_admitted} "
                f"undecided={report.undecided_cycles} "
                f"hung={report.n_transfers_hung} "
                f"violations={list(report.invariant_violations)}"
            )

    # the stressed sweep must actually exercise the machinery: a gate
    # that passes because no fault ever landed proves nothing
    stressed = sweeps[-1]
    if stressed["ingest_counters"]["substituted"] == 0:
        raise SystemExit("20% sweep never exercised substitute-previous")
    if stressed["n_retransmits"] == 0:
        raise SystemExit("5% chunk sweep never exercised retransmission")

    print("checking fault-free bit-identity (ingest-routed vs direct) ...")
    identity = bit_identity_check(args.seed, args.identity_cycles)
    print(f"bit-identical over {identity['n_cycles']} cycles: "
          f"sha256 {identity['ensemble_sha256'][:16]}...")

    return {
        "config": {
            "cycles": args.cycles,
            "identity_cycles": args.identity_cycles,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "sweeps": sweeps,
        "bit_identity": identity,
        "gate_ok": True,
    }


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--cycles", type=int, default=1000,
                   help="workflow cycles per sweep point")
    p.add_argument("--identity-cycles", type=int, default=3,
                   help="OSSE cycles for the bit-identity check")
    p.add_argument("--seed", type=int, default=2021)
    p.add_argument("--out", type=str, default="BENCH_ingest_chaos.json")
    p.add_argument("--smoke", action="store_true",
                   help="shrink cycle counts (all gates still enforced)")
    args = p.parse_args(argv)
    if args.smoke:
        args.cycles = min(args.cycles, 200)
        args.identity_cycles = min(args.identity_cycles, 2)

    report = run(args)
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
