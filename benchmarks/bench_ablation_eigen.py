"""Ablation: KeDV-style batched eigensolver vs the LAPACK baseline.

Sec. 5: "We applied KeDV for the eigenvalue solver in place of the
standard LAPACK solver to accelerate the computation" — on Fugaku,
where the batched cache-friendly dataflow wins. In NumPy the LAPACK
path (syevd, compiled) usually remains faster; what this reproduction
preserves is the *structure* (both paths batched over all grid points,
bit-compatible interfaces, single precision) and it reports the honest
measured ratio on this host. Accuracy equivalence is asserted.
"""

import time

import numpy as np
from conftest import write_artifact

from repro.eigen import eigh_batched, eigh_kedv


def letkf_matrices(B=400, m=24, no=40, seed=0, dtype=np.float32):
    rng = np.random.default_rng(seed)
    Yb = rng.normal(size=(B, no, m)).astype(dtype)
    A = np.einsum("bok,bol->bkl", Yb, Yb)
    idx = np.arange(m)
    A[:, idx, idx] += m - 1
    return A


def test_eigen_ablation(benchmark):
    A = letkf_matrices()

    t0 = time.perf_counter()
    w_k, V_k = eigh_kedv(A)
    t_kedv = time.perf_counter() - t0

    t0 = time.perf_counter()
    w_l, V_l = eigh_batched(A)
    t_lapack = time.perf_counter() - t0

    benchmark.pedantic(eigh_kedv, args=(A,), rounds=2, iterations=1)

    # accuracy equivalence on the production matrix family
    anorm = np.abs(A).sum(axis=2).max()
    assert np.max(np.abs(w_k - w_l)) < 1e-4 * anorm
    # both deliver orthonormal eigenvectors
    m = A.shape[-1]
    for V in (w_k is not None and V_k, V_l):
        gram = np.swapaxes(V, 1, 2) @ V
        assert np.allclose(gram, np.eye(m), atol=1e-4)

    write_artifact(
        "ablation_eigen.txt",
        f"batch of {A.shape[0]} symmetric {m}x{m} (f32, LETKF family):\n"
        f"  kedv   : {t_kedv*1e3:8.1f} ms\n"
        f"  lapack : {t_lapack*1e3:8.1f} ms\n"
        f"  ratio  : {t_kedv/t_lapack:.2f}x "
        "(paper: KeDV faster on Fugaku; NumPy's compiled syevd wins here — "
        "see EXPERIMENTS.md)\n",
    )
