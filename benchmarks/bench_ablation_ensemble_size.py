"""Ablation: ensemble size.

Sec. 5: the 1000-member choice came from "comprehensive sensitivity
tests with various choices of grid spacings, ensemble sizes, ...".
At reduced scale the same trade-off reproduces: larger ensembles buy
analysis accuracy at linearly-growing cost (and the LETKF's m x m
eigenproblems grow cubically).
"""

import time

import numpy as np
from conftest import write_artifact
from scipy.ndimage import gaussian_filter

from repro.config import LETKFConfig, reduced_inner_domain
from repro.grid import Grid
from repro.letkf import LETKFSolver
from repro.letkf.qc import GriddedObservations

SIZES = (5, 10, 20, 40)


def run_size(grid, m, seed=0):
    rng = np.random.default_rng(seed)

    def smooth(a):
        return gaussian_filter(a, sigma=(1, 2, 2)).astype(np.float32)

    truth = smooth(rng.normal(size=grid.shape)) * 8 + 20
    ens = np.stack([truth + smooth(rng.normal(size=grid.shape)) * 6 + 2 for _ in range(m)])
    obs = GriddedObservations(
        kind="reflectivity",
        values=truth + rng.normal(size=grid.shape).astype(np.float32),
        valid=np.ones(grid.shape, bool),
        error_std=1.0,
    )
    cfg = LETKFConfig(
        ensemble_size=m, localization_h=8000.0, localization_v=3000.0,
        analysis_zmin=0.0, analysis_zmax=20000.0, eigensolver="lapack",
    )
    solver = LETKFSolver(grid, cfg)
    t0 = time.perf_counter()
    ana, _ = solver.analyze({"x": ens}, [obs], {"reflectivity": ens.copy()})
    dt = time.perf_counter() - t0
    rmse = float(np.sqrt(np.mean((ana["x"].mean(0) - truth) ** 2)))
    return rmse, dt


def test_ensemble_size_ablation(benchmark):
    grid = Grid(reduced_inner_domain(nx=12, nz=8))
    results = {m: run_size(grid, m) for m in SIZES}
    benchmark.pedantic(run_size, args=(grid, 20), rounds=1, iterations=1)

    lines = [f"{'members':>8} {'analysis RMSE':>14} {'time [ms]':>10}"]
    for m, (rmse, dt) in results.items():
        lines.append(f"{m:>8} {rmse:>14.3f} {dt*1e3:>10.1f}")
    write_artifact("ablation_ensemble_size.txt", "\n".join(lines) + "\n")

    # more members -> better analysis (comparing the extremes)
    assert results[SIZES[-1]][0] < results[SIZES[0]][0]
    # and more cost
    assert results[SIZES[-1]][1] > results[SIZES[0]][1]
