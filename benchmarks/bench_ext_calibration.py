"""Extension: the measured-kernel cost calibration behind Fig. 5.

DESIGN.md commits the operations simulation to cost models grounded in
(i) measured kernel timings scaled by problem-size ratios and (ii) the
paper's reported stage means. This benchmark runs the calibration and
verifies the honesty condition: a single Python process is orders of
magnitude away from the paper's 15-s LETKF budget — i.e. the Fig.-5
reproduction *must* be a simulation, and the calibration quantifies the
parallelism Fugaku supplied.
"""

from conftest import write_artifact

from repro.workflow.calibration import calibrate


def test_calibration_extension(benchmark):
    calib = benchmark.pedantic(
        lambda: calibrate(G=1000, m=16, no=30, nx=20, nz=12),
        rounds=1,
        iterations=1,
    )
    write_artifact("ext_calibration.txt", calib.report() + "\n")

    # the production problem cannot fit the 15-s budget single-process
    assert calib.letkf_paper_seconds_single > 100.0
    assert calib.forecast30s_paper_seconds_single > 100.0
    # the implied speedups are in supercomputer territory
    assert calib.required_speedup_letkf > 100.0
