"""Table 2: the LETKF runs with exactly the paper's settings.

Executes one analysis with every Table-2 knob at its paper value —
2 km / 2 km Gaspari-Cohn localization, 5 dBZ / 3 m/s observation
errors, 10 dBZ / 15 m/s gross-error thresholds, 1000-obs cap, RTPP
0.95, 0.5-11 km analysis range — on a 500-m-mesh subdomain (the paper
extent is cropped so the benchmark stays laptop-sized; the *settings*
are untouched), and verifies each knob is observably active.
"""

import numpy as np
import pytest
from conftest import write_artifact
from scipy.ndimage import gaussian_filter

from repro.config import DomainConfig, LETKFConfig
from repro.grid import Grid
from repro.letkf import LETKFSolver
from repro.letkf.qc import GriddedObservations
from repro.report import table2_text

MEMBERS = 16  # scaled from 1000; every other knob is the paper's


@pytest.fixture(scope="module")
def paper_mesh_grid():
    # 500-m mesh, paper vertical extent, cropped horizontal extent
    return Grid(DomainConfig(name="table2-crop", nx=24, ny=24, nz=20,
                             dx=500.0, dy=500.0, ztop=16400.0))


@pytest.fixture(scope="module")
def table2_config():
    return LETKFConfig(ensemble_size=MEMBERS)  # all Table-2 defaults


def make_obs(grid, rng, err, kind, truth):
    return GriddedObservations(
        kind=kind,
        values=truth + rng.normal(0, err, grid.shape).astype(np.float32),
        valid=np.ones(grid.shape, bool),
        error_std=err,
    )


def run_analysis(grid, cfg):
    rng = np.random.default_rng(0)

    def smooth(std):
        """Smooth random field normalized to the requested std."""
        f = gaussian_filter(rng.normal(size=grid.shape), sigma=(1, 3, 3))
        return (f / f.std() * std).astype(np.float32)

    # realistic variability: background uncertainty larger than the
    # 5 dBZ / 3 m/s observation errors, so assimilation has signal
    truth_z = smooth(12.0) + 15
    truth_v = smooth(6.0)
    ens_z = np.stack([truth_z + smooth(9.0) + 3.0 for _ in range(MEMBERS)])
    ens_v = np.stack([truth_v + smooth(4.0) for _ in range(MEMBERS)])

    obs_z = make_obs(grid, rng, cfg.obs_error_refl_dbz, "reflectivity", truth_z)
    obs_v = make_obs(grid, rng, cfg.obs_error_doppler_ms, "doppler", truth_v)
    # a handful of gross outliers that the 10-dBZ check must reject
    obs_z.values[5, :3, :3] += 80.0

    solver = LETKFSolver(grid, cfg)
    ana, diag = solver.analyze(
        {"z": ens_z, "v": ens_v},
        [obs_z, obs_v],
        {"reflectivity": ens_z.copy(), "doppler": ens_v.copy()},
        level_chunk=2,
    )
    return truth_z, ens_z, ana, diag, solver


def test_table2_settings_active(benchmark, paper_mesh_grid, table2_config):
    truth_z, ens_z, ana, diag, solver = benchmark.pedantic(
        run_analysis, args=(paper_mesh_grid, table2_config), rounds=1, iterations=1
    )
    write_artifact("table2.txt", table2_text(table2_config) + f"\n\n{diag.summary()}\n")

    # localization scale 2 km: stencil support must be ~7.3 km
    from repro.letkf.localization import cutoff_radius

    assert cutoff_radius(table2_config.localization_h) == pytest.approx(7303.0, rel=0.01)
    offs = solver.stencil.offsets
    max_h = np.hypot(offs[:, 1] * 500.0, offs[:, 2] * 500.0).max()
    assert max_h <= 7303.0 + 1.0

    # obs cap: stencil per type limited to 1000 // 2
    assert solver.stencil.n <= table2_config.max_obs_per_grid // 2

    # gross error check fired on the injected outliers
    assert diag.n_rejected_gross >= 9

    # analysis range 0.5 - 11 km: top levels untouched
    zc = paper_mesh_grid.z_c
    top = zc > 11000.0
    assert np.allclose(ana["z"][:, top], ens_z[:, top])

    # and the analysis beats the background
    prior = np.sqrt(np.mean((ens_z.mean(0) - truth_z) ** 2))
    post = np.sqrt(np.mean((ana["z"].mean(0) - truth_z) ** 2))
    assert post < prior
