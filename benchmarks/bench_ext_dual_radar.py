"""Extension: dual MP-PAWR coverage (Maejima et al. 2022, ref [42] / Sec. 8).

"multiple PAWR coverage be beneficial for disastrous heavy rain
prediction": two radar sites observing the same domain cover more of it
and halve the error variance where their 60-km circles overlap. The
benchmark assimilates the same nature-run reflectivity through (a) one
site and (b) the merged two-site network, and asserts the dual analysis
is closer to the truth.
"""

import numpy as np
from conftest import write_artifact

from repro.config import LETKFConfig, RadarConfig, ScaleConfig
from repro.core import BDASystem
from repro.letkf import LETKFSolver
from repro.letkf.qc import GriddedObservations
from repro.model.initial import convective_sounding
from repro.radar.network import RadarNetwork, dual_kanto_network
from repro.radar.reflectivity import dbz_from_state


def run_dual(seed=41):
    scale_cfg = ScaleConfig().reduced(nx=20, nz=12, members=8)
    letkf_cfg = LETKFConfig(
        ensemble_size=8, analysis_zmin=0.0, analysis_zmax=20000.0,
        localization_h=10000.0, localization_v=4000.0,
        gross_error_refl_dbz=100.0, gross_error_doppler_ms=100.0,
        eigensolver="lapack",
    )
    bda = BDASystem(scale_cfg, letkf_cfg, RadarConfig().reduced(),
                    sounding=convective_sounding(cape_factor=1.1), seed=seed)
    bda.trigger_convection(n=4, amplitude=5.0)
    bda.spinup_nature(2100.0)

    grid = bda.model.grid
    site_a, site_b = dual_kanto_network(RadarConfig().reduced())
    net = RadarNetwork(radars=(site_a, site_b), grid=grid)
    single = RadarNetwork(radars=(site_a,), grid=grid)

    truth = dbz_from_state(bda.nature)
    rng = np.random.default_rng(seed)
    err = letkf_cfg.obs_error_refl_dbz

    def site_obs(mask):
        return GriddedObservations(
            kind="reflectivity",
            values=(truth + rng.normal(0, err, grid.shape)).astype(np.float32),
            valid=mask.copy(),
            error_std=err,
        )

    obs_a = site_obs(net._masks[0])
    obs_b = site_obs(net._masks[1])

    ens = bda.ensemble.analysis_arrays()
    hxb = {"reflectivity": np.stack(
        [dbz_from_state(st) for st in bda.ensemble.members]
    )}
    solver = LETKFSolver(grid, letkf_cfg)

    def analyze(obs):
        ana, _ = solver.analyze({"theta_p": ens["theta_p"], "qr": ens["qr"]},
                                [obs], hxb)
        hx_ana = ana["qr"]  # proxy: analyzed rain field
        return ana

    ana_single = analyze(obs_a)
    merged = net.merge_observations([obs_a, obs_b])
    ana_dual = analyze(merged)

    truth_qr = bda.nature.to_analysis()["qr"]
    cov = net.coverage

    def rmse(ana):
        return float(np.sqrt(np.mean((ana["qr"].mean(0)[cov] - truth_qr[cov]) ** 2)))

    return {
        "coverage_single": single.coverage_fraction(),
        "coverage_dual": net.coverage_fraction(),
        "rmse_single": rmse(ana_single),
        "rmse_dual": rmse(ana_dual),
    }


def test_dual_radar_extension(benchmark):
    r = benchmark.pedantic(run_dual, rounds=1, iterations=1)

    write_artifact(
        "ext_dual_radar.txt",
        f"coverage: single {r['coverage_single']:.1%} -> dual {r['coverage_dual']:.1%}\n"
        f"analyzed-rain RMSE vs truth (over dual coverage): "
        f"single {r['rmse_single']:.2e} -> dual {r['rmse_dual']:.2e}\n",
    )
    # dual coverage sees more of the domain ...
    assert r["coverage_dual"] > r["coverage_single"] * 1.3
    # ... and analyzes the rain field better over the union area
    assert r["rmse_dual"] <= r["rmse_single"] * 1.02
