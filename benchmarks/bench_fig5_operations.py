"""Fig. 5: the month-long operational time-to-solution record.

Simulates both exclusive-allocation periods (Olympics July 20 - Aug 8,
Paralympics Aug 25 - Sep 5) at the 30-second cadence with outages and
rain-coupled costs, and regenerates all three Fig.-5 products:

* (a)/(b) per-cycle TTS series with outage gaps + rain-area curves,
* (c) the TTS histogram,

asserting the paper's headline numbers in shape: ~75k forecasts, net
~26 days of production, ~97% of forecasts under 3 minutes, TTS
correlated with rain area.
"""

import numpy as np
from conftest import write_artifact

from repro.report import histogram_text
from repro.workflow import OperationsSimulator


def run_campaign():
    return OperationsSimulator(seed=2021).run_campaign()


def test_fig5_operations(benchmark):
    campaign = benchmark.pedantic(run_campaign, rounds=1, iterations=1)

    total = sum(r.n_forecasts for r in campaign.values())
    tts = np.concatenate([r.tts_series for r in campaign.values()])
    tts = tts[np.isfinite(tts)]
    frac3 = float(np.mean(tts <= 180.0))

    # paper: 75,248 forecasts over the month
    assert 55_000 < total < 92_160
    # paper: time-to-solution < 3 min for ~97% of cases
    assert 0.93 <= frac3 <= 0.995
    # paper: net 26 d 3 h 4 m of production
    assert 20.0 < total * 30.0 / 86400.0 < 30.0

    # rain-area coupling visible (Fig. 5a/b overlay)
    oly = campaign["Olympics"]
    ok = np.isfinite(oly.tts_series)
    corr = np.corrcoef(oly.tts_series[ok], oly.rain_area_1mm[ok])[0, 1]
    assert corr > 0.2

    # outage gaps exist (gray shading)
    assert 0.02 < oly.outage_fraction() < 0.4

    # render the Fig.-5a panel (TTS dots + outage shading + rain curves)
    from conftest import OUTPUT_DIR

    from repro.viz.png import write_png
    from repro.viz.timeseries import render_tts_panel

    panel = render_tts_panel(oly.tts_series, oly.rain_area_1mm, oly.rain_area_20mm)
    write_png(str(OUTPUT_DIR / "fig5_olympics_panel.png"), panel)

    edges, counts = oly.histogram(bin_s=15.0)
    lines = [
        f"total forecasts: {total} (paper: 75,248)",
        f"under 3 minutes: {frac3:.1%} (paper: ~97%)",
        f"net production : {total * 30.0 / 86400.0:.1f} days (paper: 26 d 3 h)",
        f"TTS-rain corr  : {corr:.2f}",
        "",
        "Olympics TTS histogram (Fig. 5c):",
        histogram_text(edges, counts, width=40),
    ]
    write_artifact("fig5_operations.txt", "\n".join(lines) + "\n")
