"""LETKF analysis cost vs observed coverage: dense vs sparse hot path.

Convective radar echoes cover a small fraction of the inner domain
(Fig. 6b: the storm occupies a patch of the 120 km circle), so most
grid points have no local observations. The sparse hot path compacts
the per-chunk batch down to active points before the eigensolves, which
should make the analysis cost scale with the observed area instead of
the domain size. This benchmark sweeps coverage fractions over three
solver modes on an identical seeded problem:

* ``dense``          — the pre-optimization reference path
  (``sparse=False``): every grid point eigensolved, identity-filled;
* ``compact``        — active-point compaction only
  (``sparse=True, obs_compaction=False``): **bit-identical** to dense
  on active points (gated by a sha256 checksum of the active-cell
  analysis bytes);
* ``compact+obs``    — full hot path (observation-axis compaction on
  top): numerically equivalent, reported as a max-abs-diff.

Run as a script (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_letkf_scaling.py            # full
    PYTHONPATH=src python benchmarks/bench_letkf_scaling.py --smoke    # CI

Writes ``BENCH_letkf_scaling.json``. The non-smoke run enforces the
acceptance gate: >= 3x analysis speedup at 5 % coverage with matching
checksums.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import LETKFConfig, reduced_inner_domain  # noqa: E402
from repro.grid import Grid  # noqa: E402
from repro.letkf import LETKFSolver  # noqa: E402
from repro.letkf.qc import GriddedObservations  # noqa: E402

COVERAGES = (0.05, 0.30, 1.0)
VARS = ("u", "v", "w", "theta_p", "qv")


def build_case(nx: int, nz: int, members: int, seed: int):
    """Seeded grid + ensemble + full-coverage obs fields (masked later)."""
    grid = Grid(reduced_inner_domain(nx=nx, nz=nz))
    cfg = LETKFConfig(
        ensemble_size=members,
        localization_h=9000.0,
        localization_v=3000.0,
        analysis_zmin=0.0,
        analysis_zmax=20000.0,
        eigensolver="lapack",
    )
    rng = np.random.default_rng(seed)
    shape = grid.shape
    truth = {
        "reflectivity": (rng.normal(size=shape) * 8 + 20).astype(np.float32),
        "doppler": (rng.normal(size=shape) * 5).astype(np.float32),
    }
    ensemble = {
        v: (rng.normal(size=(members,) + shape) * 2 + 10).astype(np.float32)
        for v in VARS
    }
    hxb = {
        k: (truth[k] + rng.normal(size=(members,) + shape) * 3).astype(np.float32)
        for k in truth
    }
    obs_values = {
        k: (truth[k] + rng.normal(size=shape).astype(np.float32)) for k in truth
    }
    return grid, cfg, ensemble, hxb, obs_values


def coverage_mask(grid: Grid, frac: float) -> np.ndarray:
    """Centered storm patch covering ``frac`` of the horizontal area."""
    mask = np.zeros(grid.shape, bool)
    if frac >= 1.0:
        mask[...] = True
        return mask
    side_y = max(1, int(round(grid.ny * np.sqrt(frac))))
    side_x = max(1, int(round(grid.nx * np.sqrt(frac))))
    j0 = (grid.ny - side_y) // 2
    i0 = (grid.nx - side_x) // 2
    mask[:, j0 : j0 + side_y, i0 : i0 + side_x] = True
    return mask


def make_observations(obs_values: dict, mask: np.ndarray) -> list:
    return [
        GriddedObservations(
            kind="reflectivity",
            values=obs_values["reflectivity"],
            valid=mask.copy(),
            error_std=1.0,
        ),
        GriddedObservations(
            kind="doppler",
            values=obs_values["doppler"],
            valid=mask.copy(),
            error_std=2.0,
        ),
    ]


def active_cells(solver: LETKFSolver, mask: np.ndarray) -> np.ndarray:
    """Analysis cells with >= 1 valid obs in their localization stencil.

    Mirrors the solver's has_obs derivation: the obs validity mask
    dilated by the stencil offsets, intersected with the analysis
    level mask. On these cells dense and compacted analyses must be
    bit-identical; outside them the sparse path keeps the background.
    """
    g = solver.grid
    offs = solver.stencil.offsets
    pk = int(np.max(np.abs(offs[:, 0]))) if len(offs) else 0
    pj = int(np.max(np.abs(offs[:, 1]))) if len(offs) else 0
    pi = int(np.max(np.abs(offs[:, 2]))) if len(offs) else 0
    pv = np.pad(mask, ((pk, pk), (pj, pj), (pi, pi)), constant_values=False)
    act = np.zeros(g.shape, bool)
    for dk, dj, di in offs:
        act |= pv[
            pk + dk : pk + dk + g.nz,
            pj + dj : pj + dj + g.ny,
            pi + di : pi + di + g.nx,
        ]
    act &= solver.level_mask[:, None, None]
    return act


def checksum(analysis: dict, act: np.ndarray) -> str:
    """sha256 over the active-cell analysis bytes of every variable."""
    h = hashlib.sha256()
    for v in sorted(analysis):
        h.update(np.ascontiguousarray(analysis[v][:, act]).tobytes())
    return h.hexdigest()


def time_mode(solver, ensemble, observations, hxb, *, repeats, **kw):
    """Best-of-N timing of the analysis stage alone (after warm-up)."""
    # warm-up builds the workspace, so the timed region measures the
    # zero-allocation steady state the 30-s cadence actually runs in
    analysis, diag = solver.analyze(ensemble, observations, hxb, **kw)
    timings = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        analysis, diag = solver.analyze(ensemble, observations, hxb, **kw)
        timings.append(time.perf_counter() - t0)
    return analysis, diag, min(timings)


def run(args) -> dict:
    grid, cfg, ensemble, hxb, obs_values = build_case(
        args.nx, args.nz, args.members, args.seed
    )
    sweeps = []
    for frac in COVERAGES:
        mask = coverage_mask(grid, frac)
        observations = make_observations(obs_values, mask)
        solver = LETKFSolver(grid, cfg)
        act = active_cells(solver, mask)

        ana_d, diag_d, t_dense = time_mode(
            solver, ensemble, observations, hxb,
            repeats=args.repeats, sparse=False,
        )
        ana_c, diag_c, t_compact = time_mode(
            solver, ensemble, observations, hxb,
            repeats=args.repeats, sparse=True, obs_compaction=False,
        )
        ana_o, diag_o, t_obs = time_mode(
            solver, ensemble, observations, hxb,
            repeats=args.repeats, sparse=True, obs_compaction=True,
        )

        ck_dense = checksum(ana_d, act)
        ck_compact = checksum(ana_c, act)
        if ck_dense != ck_compact:
            raise SystemExit(
                f"coverage {frac}: compacted analysis is not bit-identical "
                f"to dense on active points ({ck_dense} != {ck_compact})"
            )
        obs_maxdiff = max(
            float(np.max(np.abs(ana_o[v][:, act] - ana_d[v][:, act])))
            for v in ana_d
        ) if act.any() else 0.0

        entry = {
            "coverage": frac,
            "active_fraction": diag_c.active_fraction,
            "obs_per_point_mean": diag_c.obs_per_point_mean,
            "obs_per_point_max": diag_c.obs_per_point_max,
            "seconds": {
                "dense": t_dense,
                "compact": t_compact,
                "compact+obs": t_obs,
            },
            "speedup": {
                "compact": t_dense / t_compact,
                "compact+obs": t_dense / t_obs,
            },
            "checksum_active_cells": ck_dense,
            "bit_identical_active": True,
            "obs_compaction_maxdiff": obs_maxdiff,
        }
        sweeps.append(entry)
        print(
            f"coverage {frac:5.0%}: dense {t_dense:7.3f} s  "
            f"compact {t_compact:7.3f} s ({entry['speedup']['compact']:.2f}x)  "
            f"compact+obs {t_obs:7.3f} s "
            f"({entry['speedup']['compact+obs']:.2f}x)  "
            f"maxdiff {obs_maxdiff:.2e}"
        )

    report = {
        "config": {
            "nx": args.nx,
            "nz": args.nz,
            "members": args.members,
            "repeats": args.repeats,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "sweeps": sweeps,
    }
    gate = sweeps[0]["speedup"]["compact+obs"]
    if not args.smoke and gate < 3.0:
        raise SystemExit(
            f"sparse path is only {gate:.2f}x dense at "
            f"{COVERAGES[0]:.0%} coverage (expected >= 3x)"
        )
    return report


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # default scale: a reduced inner domain large enough that the
    # eigensolve batch dominates (the production mesh is 256 x 256 x 60)
    p.add_argument("--members", type=int, default=20)
    p.add_argument("--nx", type=int, default=28)
    p.add_argument("--nz", type=int, default=14)
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--out", type=str, default="BENCH_letkf_scaling.json")
    p.add_argument(
        "--smoke", action="store_true",
        help="tiny problem + no speedup gate (CI sanity run; the "
             "bit-identity checksum gate still applies)",
    )
    args = p.parse_args(argv)
    if args.smoke:
        args.members = min(args.members, 8)
        args.nx = min(args.nx, 10)
        args.nz = min(args.nz, 8)
        args.repeats = 1

    report = run(args)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
