"""Table 3: the SCALE-analog runs with the paper's configuration.

Integrates the model with every Table-3 scheme active (HEVI
integration, SM6 microphysics, gray radiation, Beljaars surface, MYNN
2.5 PBL, Smagorinsky turbulence) and reports the integration cost; the
mesh is reduced (DESIGN.md scaling policy) but the configuration object
carries the paper values, which the artifact renders verbatim.
"""

import numpy as np
from conftest import write_artifact

from repro.config import ScaleConfig
from repro.model import ScaleRM, convective_sounding, warm_bubble
from repro.report import table3_text


def run_window(model, state, seconds):
    return model.integrate(state, seconds)


def test_table3_configuration(benchmark):
    paper = ScaleConfig()
    # paper values present in the rendered table
    txt = table3_text(paper)
    assert "0.4 s" in txt and "500 m" in txt and "HEVI" in txt

    cfg = paper.reduced(nx=16, nz=12)
    model = ScaleRM(cfg, convective_sounding())
    st = model.initial_state()
    warm_bubble(st, x0=64000.0, y0=64000.0, amplitude=4.0, moisture_boost=0.3)

    st = benchmark.pedantic(run_window, args=(model, st, 300.0), rounds=1, iterations=1)

    # every Table-3 physics scheme executed
    assert all(n > 0 for n in model.physics.calls.values()), model.physics.calls
    # HEVI: the implicit vertical solver was factorized and used
    assert len(model.dynamics._factors) >= 1
    # the state stayed physical
    assert np.all(np.isfinite(st.fields["momz"]))
    assert np.all(st.fields["qv"] >= 0)

    calls = "\n".join(f"  {k:<22} {v} calls" for k, v in model.physics.calls.items())
    write_artifact(
        "table3.txt",
        table3_text(paper) + "\n\nreduced-mesh 300 s integration, physics calls:\n" + calls + "\n",
    )
