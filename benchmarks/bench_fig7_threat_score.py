"""Fig. 7: threat-score curves, BDA vs persistence.

The paper scores 120 forecasts between 19:00 and 20:00 UTC; at
reduced scale we score several forecast cases launched from successive
analysis times, each verified against the evolving nature run. The
asserted *shape* properties are the paper's:

* persistence is (near-)perfect at lead 0 — it IS the observation;
* persistence skill declines monotonically (on average);
* the BDA forecast beats persistence at the longer leads.
"""

import numpy as np
from conftest import write_artifact

from repro.verify import PersistenceForecast, contingency, threat_score

N_CASES = 3
N_LEADS = 4
LEAD_STEP = 150.0
THRESHOLD = 10.0


def run_cases(bda):
    """Launch N_CASES forecasts, two cycles apart, scoring each."""
    curves_bda = np.full((N_CASES, N_LEADS), np.nan)
    curves_per = np.full((N_CASES, N_LEADS), np.nan)
    mask = bda.obsope.coverage

    for case in range(N_CASES):
        obs_now = bda.last_obs[0]
        pers = PersistenceForecast(np.where(obs_now.valid, obs_now.values, -30.0))
        fp = bda.forecast(
            length_seconds=LEAD_STEP * (N_LEADS - 1),
            n_members=3,
            output_interval=LEAD_STEP,
        )
        truth = bda.nature.copy()
        for li in range(N_LEADS):
            from repro.radar.reflectivity import dbz_from_state

            truth_dbz = dbz_from_state(truth)
            det = fp.member_dbz[0, li]
            curves_bda[case, li] = threat_score(
                contingency(det, truth_dbz, THRESHOLD, mask=mask)
            )
            curves_per[case, li] = threat_score(
                contingency(pers.at_lead(li * LEAD_STEP), truth_dbz, THRESHOLD, mask=mask)
            )
            if li < N_LEADS - 1:
                truth = bda.nature_model.integrate(truth, LEAD_STEP)
        # two more cycles to the next case's initial time
        bda.cycle()
        bda.cycle()
    return curves_bda, curves_per


def test_fig7_threat_scores(benchmark, cycled_osse):
    curves_bda, curves_per = benchmark.pedantic(
        run_cases, args=(cycled_osse,), rounds=1, iterations=1
    )
    mean_bda = np.nanmean(curves_bda, axis=0)
    mean_per = np.nanmean(curves_per, axis=0)

    lines = [f"threat score @{THRESHOLD:.0f} dBZ, mean over {N_CASES} cases (cf. Fig. 7)"]
    lines.append(f"{'lead [min]':>10} {'BDA':>8} {'persistence':>12}")
    for li in range(N_LEADS):
        lines.append(
            f"{li * LEAD_STEP / 60:>10.1f} {mean_bda[li]:>8.3f} {mean_per[li]:>12.3f}"
        )
    write_artifact("fig7_threat_score.txt", "\n".join(lines) + "\n")

    # persistence perfect at lead 0 (it starts from the observation)
    assert mean_per[0] > 0.85
    # persistence declines with lead (monotone in the mean)
    assert mean_per[-1] < mean_per[0] - 0.2
    # the BDA forecast overtakes persistence at the longer leads
    assert mean_bda[-1] > mean_per[-1]
    # and carries usable skill there
    assert mean_bda[-1] > 0.15
