"""Fig. 4: the time-to-solution definition and decomposition.

Measures the mean per-stage durations over many simulated cycles and
checks them against the paper's reported stage costs: ~3 s JIT-DT,
~15 s part <1>, ~2 min part <2>, with the file-creation segment
included "since it contributes to the forecast lead time for end
users" (Sec. 6.1).
"""

import numpy as np
from conftest import write_artifact

from repro.config import WorkflowConfig
from repro.core import TimeToSolution
from repro.workflow import RealtimeWorkflow


def collect_breakdowns(n=400):
    wf = RealtimeWorkflow(WorkflowConfig(), seed=4)
    rows = []
    for c in range(n):
        rec = wf.run_cycle(c)
        if rec.ok:
            rows.append(rec.breakdown() | {"tts": rec.time_to_solution})
    return rows


def test_fig4_decomposition(benchmark):
    rows = benchmark(collect_breakdowns)
    mean = {k: float(np.mean([r[k] for r in rows])) for k in rows[0]}

    # paper stage costs (Sec. 7)
    assert 1.0 < mean["jitdt_transfer"] < 6.0  # "~3 seconds"
    assert 8.0 < mean["letkf_and_wait"] < 25.0  # "<1> ... ~15 seconds"
    assert 100.0 < mean["forecast_30min_and_product"] < 150.0  # "~2 minutes"
    assert mean["file_creation"] > 0.0  # included by definition
    assert mean["tts"] < 180.0  # "< 3 minutes"

    # the TimeToSolution object reproduces the same accounting
    tts = TimeToSolution(t_obs=0.0)
    t = 0.0
    for stage, key in (
        ("file_creation", "file_creation"),
        ("jitdt_transfer", "jitdt_transfer"),
        ("letkf", "letkf_and_wait"),
        ("forecast_30min", "forecast_30min_and_product"),
    ):
        t += mean[key]
        tts.stamp(stage, t)
    assert tts.total == sum(v for k, v in mean.items() if k != "tts")
    write_artifact("fig4_time_to_solution.txt", tts.report() + "\n")
