"""Fleet-operations gate: tenant sweep + identity + policy dividend.

Production after the Games would run a fleet of (phased-array radar,
inner domain) tenants on shared compute under the same "< 3 minutes"
promise the paper made for one. This benchmark pins down the three
claims the fleet layer stands on:

* **tenant sweep** — aggregate cycles/s (host wall time) and fleet
  deadline-hit fraction at 1/2/4/8 tenants under a 0.9 shared budget
  and phase-offset storms;
* **single-tenant identity** — a 1-tenant dedicated fleet produces the
  *same records* as the stand-alone ``RealtimeWorkflow`` it refactors
  (max-plus level), and a 1-tenant coupled fleet drives a real
  mini-OSSE domain to a byte-identical ensemble vs direct
  ``BDASystem.cycle()`` (bit level) — the refactor changed shape, not
  behaviour;
* **policy dividend** — at 4 tenants under the shared budget, the
  deadline-aware (earliest-feasible-slack) dispatcher beats the naive
  round-robin baseline on deadline-hit fraction.

Run as a script (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_fleet.py            # full
    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke    # CI

Writes ``BENCH_fleet.json``. All gates are enforced in both modes;
``--smoke`` only shrinks round counts.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import (  # noqa: E402
    LETKFConfig,
    RadarConfig,
    ScaleConfig,
    WorkflowConfig,
)
from repro.core import BDASystem  # noqa: E402
from repro.fleet import (  # noqa: E402
    DomainTenant,
    FleetConfig,
    FleetScheduler,
    storm_rain,
)
from repro.model.initial import convective_sounding  # noqa: E402
from repro.resilience.faults import StreamFaultInjector, StreamFaultRates  # noqa: E402
from repro.workflow.realtime import RealtimeWorkflow  # noqa: E402

TENANT_COUNTS = (1, 2, 4, 8)
BUDGET_FRACTION = 0.9
STORM_PEAK_KM2 = 8000.0


def records_sha256(records) -> str:
    h = hashlib.sha256()
    for r in records:
        h.update(repr(r).encode())
    return h.hexdigest()


def ensemble_sha256(bda: BDASystem) -> str:
    h = hashlib.sha256()
    for _, arr in sorted(bda.ensemble.state.fields.items()):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def build_bda(seed: int) -> BDASystem:
    scfg = ScaleConfig().reduced(nx=12, nz=10, members=4)
    lcfg = LETKFConfig(
        ensemble_size=4, analysis_zmin=0.0, analysis_zmax=20000.0,
        localization_h=15000.0, localization_v=5000.0,
        gross_error_refl_dbz=100.0, gross_error_doppler_ms=100.0,
        eigensolver="lapack",
    )
    bda = BDASystem(
        scfg, lcfg, RadarConfig().reduced(n_elevations=6, n_azimuths=24, n_gates=40),
        sounding=convective_sounding(), seed=seed,
    )
    bda.trigger_convection(n=2, amplitude=4.0)
    bda.spinup_nature(120.0)
    return bda


def tenant_sweep(args) -> list[dict]:
    """Aggregate throughput + deadline fraction vs tenant count."""
    rain = storm_rain(STORM_PEAK_KM2)
    rows = []
    for n in TENANT_COUNTS:
        cfg = FleetConfig(
            n_tenants=n, policy="deadline",
            budget_fraction=BUDGET_FRACTION, seed=args.seed,
        )
        fleet = FleetScheduler.from_config(cfg)
        t0 = time.perf_counter()
        report = fleet.run(args.rounds, rain=rain)
        wall_s = time.perf_counter() - t0
        n_cycles = sum(t.n_cycles for t in report.tenants)
        row = {
            "n_tenants": n,
            "n_rounds": args.rounds,
            "budget_fraction": BUDGET_FRACTION,
            "part1_blocks": report.part1_blocks,
            "part2_slots": report.part2_slots,
            "n_cycles": n_cycles,
            "wall_s": wall_s,
            "aggregate_cycles_per_s": n_cycles / wall_s if wall_s else 0.0,
            "availability": report.availability,
            "deadline_fraction": report.deadline_fraction,
        }
        rows.append(row)
        print(
            f"tenants {n}: {n_cycles} cycles in {wall_s:6.2f} s "
            f"({row['aggregate_cycles_per_s']:8.1f} cycles/s)  "
            f"avail {report.availability:6.1%}  "
            f"deadline {report.deadline_fraction:6.1%}"
        )
    return rows


def single_tenant_identity(args) -> dict:
    """1-tenant dedicated fleet == stand-alone RealtimeWorkflow."""
    rain = storm_rain(STORM_PEAK_KM2)
    wcfg = WorkflowConfig()

    solo = RealtimeWorkflow(
        wcfg, seed=args.seed,
        stream_injector=StreamFaultInjector(
            StreamFaultRates.all_off(), seed=args.seed,
            cycle_interval_s=wcfg.cycle_interval_s,
        ),
        radar_id="tenant-0",
    )
    for k in range(args.identity_rounds):
        solo.run_cycle(k, rain_area_km2=rain(0, k))

    fleet = FleetScheduler(
        [DomainTenant("tenant-0", wcfg, seed=args.seed)], pool=None
    )
    fleet.run(args.identity_rounds, rain=rain)

    h_solo = records_sha256(solo.records)
    h_fleet = records_sha256(fleet.tenants[0].records)
    if fleet.tenants[0].records != solo.records or h_solo != h_fleet:
        raise SystemExit(
            f"1-tenant fleet records diverge from the stand-alone "
            f"RealtimeWorkflow ({h_fleet} != {h_solo})"
        )
    return {
        "n_rounds": args.identity_rounds,
        "seed": args.seed,
        "records_sha256": h_solo,
        "bit_identical": True,
    }


def coupled_domain_identity(args) -> dict:
    """1-tenant coupled fleet drives the real domain bit-identically."""
    direct = build_bda(args.seed)
    for _ in range(args.osse_cycles):
        direct.cycle()

    routed = build_bda(args.seed)
    tenant = DomainTenant("tokyo", WorkflowConfig(), seed=args.seed, bda=routed)
    fleet = FleetScheduler([tenant], pool=None)
    fleet.run(args.osse_cycles)

    h_direct = ensemble_sha256(direct)
    h_routed = ensemble_sha256(routed)
    if h_direct != h_routed:
        raise SystemExit(
            f"coupled 1-tenant fleet ensemble is not bit-identical to "
            f"direct BDASystem cycling ({h_routed} != {h_direct})"
        )
    return {
        "n_cycles": args.osse_cycles,
        "seed": args.seed,
        "ensemble_sha256": h_direct,
        "bit_identical": True,
    }


def policy_dividend(args) -> dict:
    """Deadline-aware dispatch must beat round-robin at 4 tenants."""
    rain = storm_rain(STORM_PEAK_KM2)
    fractions = {}
    for policy in ("deadline", "round-robin"):
        cfg = FleetConfig(
            n_tenants=4, policy=policy,
            budget_fraction=BUDGET_FRACTION, seed=args.seed,
        )
        report = FleetScheduler.from_config(cfg).run(args.rounds, rain=rain)
        fractions[policy] = report.deadline_fraction
        print(f"policy {policy:12s}: deadline {report.deadline_fraction:6.1%}")
    delta = fractions["deadline"] - fractions["round-robin"]
    if delta <= 0.0:
        raise SystemExit(
            f"deadline-aware dispatch did not beat round-robin at 4 "
            f"tenants: {fractions['deadline']:.4f} vs "
            f"{fractions['round-robin']:.4f}"
        )
    return {
        "n_tenants": 4,
        "n_rounds": args.rounds,
        "budget_fraction": BUDGET_FRACTION,
        "deadline_fraction_edf": fractions["deadline"],
        "deadline_fraction_round_robin": fractions["round-robin"],
        "delta": delta,
    }


def run(args) -> dict:
    print(f"tenant sweep ({args.rounds} rounds, budget {BUDGET_FRACTION}) ...")
    sweep = tenant_sweep(args)

    print("checking 1-tenant fleet identity (records vs RealtimeWorkflow) ...")
    identity = single_tenant_identity(args)
    print(f"records identical over {identity['n_rounds']} rounds: "
          f"sha256 {identity['records_sha256'][:16]}...")

    print("checking coupled-domain identity (fleet vs direct OSSE) ...")
    coupled = coupled_domain_identity(args)
    print(f"ensembles identical over {coupled['n_cycles']} cycles: "
          f"sha256 {coupled['ensemble_sha256'][:16]}...")

    print("checking policy dividend (deadline vs round-robin, 4 tenants) ...")
    dividend = policy_dividend(args)
    print(f"deadline beats round-robin by {dividend['delta']:+.1%}")

    return {
        "config": {
            "rounds": args.rounds,
            "identity_rounds": args.identity_rounds,
            "osse_cycles": args.osse_cycles,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "tenant_sweep": sweep,
        "single_tenant_identity": identity,
        "coupled_domain_identity": coupled,
        "policy_dividend": dividend,
        "gate_ok": True,
    }


def main(argv=None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--rounds", type=int, default=400,
                   help="fleet rounds per sweep/policy point")
    p.add_argument("--identity-rounds", type=int, default=200,
                   help="rounds for the record-level identity gate")
    p.add_argument("--osse-cycles", type=int, default=3,
                   help="OSSE cycles for the coupled bit-identity gate")
    p.add_argument("--seed", type=int, default=2021)
    p.add_argument("--out", type=str, default="BENCH_fleet.json")
    p.add_argument("--smoke", action="store_true",
                   help="shrink round counts (all gates still enforced)")
    args = p.parse_args(argv)
    if args.smoke:
        args.rounds = min(args.rounds, 120)
        args.identity_rounds = min(args.identity_rounds, 60)
        args.osse_cycles = min(args.osse_cycles, 2)

    report = run(args)
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
