"""Fig. 8: the 3-D bird's-eye view of rain cores.

Volume-renders the forecast reflectivity with 10-dBZ shells from 10 to
50 dBZ and the 3x vertical stretch of the paper's figure.
"""

import numpy as np
from conftest import OUTPUT_DIR, write_artifact

from repro.radar.reflectivity import dbz_from_state
from repro.viz import write_png
from repro.viz.birdseye import DEFAULT_SHELLS, render_birdseye


def render(bda):
    dbz = dbz_from_state(bda.nature).astype(np.float64)
    g = bda.model.grid
    return render_birdseye(dbz, z_heights=g.z_c, dx=g.dx, vertical_stretch=3.0)


def test_fig8_birdseye(benchmark, cycled_osse, output_dir):
    img = benchmark.pedantic(render, args=(cycled_osse,), rounds=1, iterations=1)
    write_png(str(OUTPUT_DIR / "fig8_birdseye.png"), img)

    # the Fig. 8 shells
    assert DEFAULT_SHELLS == (10.0, 20.0, 30.0, 40.0, 50.0)
    # the storm renders: colored pixels exist
    assert np.any(np.any(img < 240, axis=-1))
    # vertical stretch visibly elongates the image
    dbz = dbz_from_state(cycled_osse.nature).astype(np.float64)
    g = cycled_osse.model.grid
    img1 = render_birdseye(dbz, z_heights=g.z_c, dx=g.dx, vertical_stretch=1.0)
    assert img.shape[0] > img1.shape[0]
    write_artifact(
        "fig8_birdseye.txt",
        f"image {img.shape[1]}x{img.shape[0]}, max dBZ {dbz.max():.1f}, "
        f"shells {DEFAULT_SHELLS}\n",
    )
