"""Fig. 3: the nested-domain configuration and data dependencies.

Builds the outer (1.5 km class) and inner (500 m class) domains at
reduced scale, runs the 3-hourly outer refresh feeding the inner
lateral boundaries, and checks the Fig.-3b dependency graph: JMA-
substitute sounding -> outer ensemble forecast -> inner boundary ->
inner forecasts, plus the node split (8888 inner / 2002 outer).
"""

import numpy as np
import pytest
from conftest import write_artifact

from repro.comm.topology import FugakuAllocation, NodeRole
from repro.config import NodeAllocation, ScaleConfig
from repro.core import Ensemble, NestedDomains
from repro.model import ScaleRM, convective_sounding


def run_nesting():
    inner_cfg = ScaleConfig().reduced(nx=16, nz=12, members=4)
    outer_cfg = ScaleConfig().reduced(nx=8, nz=12)  # 3x coarser, same extent
    inner = ScaleRM(inner_cfg, convective_sounding())
    rng = np.random.default_rng(0)
    ens = Ensemble.from_model(inner, 4, rng)
    nest = NestedDomains(inner, outer_cfg, convective_sounding(), refresh_seconds=3 * 3600.0)

    events = []
    for t in (0.0, 1800.0, 3 * 3600.0, 3 * 3600.0 + 1800.0, 6 * 3600.0):
        refreshed = nest.tick(t, ens)
        events.append((t, refreshed))
    return inner, nest, events


def test_fig3_nesting(benchmark):
    inner, nest, events = benchmark.pedantic(run_nesting, rounds=1, iterations=1)

    # 3-hourly refresh pattern (Fig. 3b: "Every 3 hours ...")
    assert [r for _, r in events] == [True, False, True, False, True]
    assert nest.refresh_count == 3

    # outer domain is coarser, same physical extent
    assert nest.outer_model.grid.dx > inner.grid.dx
    assert nest.outer_model.grid.domain.extent_x == pytest.approx(
        inner.grid.domain.extent_x
    )

    # boundary fields installed on the inner model, inner-grid shaped
    assert inner.boundary.fields is not None
    assert inner.boundary.fields["qv"].shape == inner.grid.shape

    # the node split of Fig. 3 / Sec. 6.2
    alloc = FugakuAllocation(NodeAllocation())
    counts = alloc.role_counts()
    assert counts[NodeRole.OUTER_DOMAIN] == 2002
    assert counts[NodeRole.PART1_LETKF] + counts[NodeRole.PART2_FORECAST] == 8888

    write_artifact(
        "fig3_nesting.txt",
        "refresh events (t, refreshed): " + repr(events) + "\n"
        f"outer dx = {nest.outer_model.grid.dx:.0f} m, inner dx = {inner.grid.dx:.0f} m\n"
        f"node split: inner 8888 (8008+880), outer 2002\n",
    )
