"""Fig. 1: the final production images.

Renders (a) the map view of rain intensity (RIKEN webpage product) and
(b) the 3-D view (MTI smartphone-app product) from a developed
convective state, and writes both PNGs — the per-cycle product path
whose file timestamp defines T_fcst.
"""

from conftest import OUTPUT_DIR


def render_products(bda, outdir):
    from repro.core import ProductWriter

    pw = ProductWriter(outdir / "fig1_products")
    return pw.write(bda.ensemble.mean_state(), cycle=0, with_3d=True)


def test_fig1_products(benchmark, cycled_osse, output_dir):
    paths = benchmark.pedantic(
        render_products, args=(cycled_osse, output_dir), rounds=1, iterations=1
    )
    assert set(paths) == {"mapview", "rainrate", "birdseye", "metadata"}
    for p in paths.values():
        assert (OUTPUT_DIR / "fig1_products").exists()
    # the map product is a real PNG
    with open(paths["mapview"], "rb") as f:
        assert f.read(8) == b"\x89PNG\r\n\x1a\n"
    # the analysis carries echoes to display
    import json

    meta = json.loads(open(paths["metadata"]).read())
    assert meta["max_dbz"] > 0.0
