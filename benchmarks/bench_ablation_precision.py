"""Ablation: single vs double precision.

Sec. 5: "We converted variables of both SCALE and LETKF Fortran codes
from double precision to single precision for 2x acceleration."

Measures the LETKF transform and a model dynamics step in both
precisions. In NumPy the win comes from memory bandwidth rather than
FMA width, so the expected single-precision speedup is >1x but usually
below the Fortran 2x; the benchmark reports the measured factor and
asserts single precision (i) is no slower and (ii) agrees with double
to single-precision accuracy.
"""

import time

import numpy as np
from conftest import write_artifact

from repro.letkf.core import letkf_transform


def make_inputs(dtype, G=1500, No=40, m=24, seed=0):
    rng = np.random.default_rng(seed)
    dYb = rng.normal(size=(G, No, m)).astype(dtype)
    dYb -= dYb.mean(axis=2, keepdims=True)
    d = rng.normal(size=(G, No)).astype(dtype)
    rinv = rng.uniform(0.1, 1.0, size=(G, No)).astype(dtype)
    return dYb, d, rinv


def run_letkf(dtype):
    dYb, d, rinv = make_inputs(dtype)
    return letkf_transform(dYb, d, rinv, backend="lapack", rtpp_factor=0.95)


def timed(fn, *args, repeats=3):
    best = np.inf
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn(*args)
        best = min(best, time.perf_counter() - t0)
    return out, best


def test_precision_ablation(benchmark):
    W32, t32 = timed(run_letkf, np.float32)
    W64, t64 = timed(run_letkf, np.float64)
    benchmark.pedantic(run_letkf, args=(np.float32,), rounds=2, iterations=1)

    speedup = t64 / t32
    # f32 must not be slower, and results must agree
    assert speedup > 1.0, f"single precision slower: {speedup:.2f}x"
    assert np.allclose(W32.astype(np.float64), W64, atol=5e-3)

    # model step precision comparison
    from repro.config import ScaleConfig
    from repro.model import ScaleRM, convective_sounding, warm_bubble
    from dataclasses import replace

    times = {}
    for dt_name in ("float32", "float64"):
        cfg = replace(ScaleConfig().reduced(nx=24, nz=16), dtype=dt_name)
        model = ScaleRM(cfg, convective_sounding(), with_physics=False)
        st = model.initial_state()
        warm_bubble(st, x0=64000, y0=64000, amplitude=3.0)
        st = model.step(st)  # warm the factor cache
        t0 = time.perf_counter()
        for _ in range(10):
            st = model.step(st)
        times[dt_name] = time.perf_counter() - t0
    model_speedup = times["float64"] / times["float32"]

    write_artifact(
        "ablation_precision.txt",
        f"LETKF transform: f64 {t64*1e3:.1f} ms vs f32 {t32*1e3:.1f} ms "
        f"-> {speedup:.2f}x (paper: 2x on Fugaku)\n"
        f"model 10 steps: f64 {times['float64']*1e3:.0f} ms vs "
        f"f32 {times['float32']*1e3:.0f} ms -> {model_speedup:.2f}x\n",
    )
    assert model_speedup > 0.8  # never catastrophically slower
